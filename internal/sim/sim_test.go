package sim

import (
	"strings"
	"testing"

	"dagsfc/internal/core"
)

// tinyExperiment is a fast sweep used by the harness tests.
func tinyExperiment(trials int) *Experiment {
	return &Experiment{
		Name:       "tiny",
		Title:      "tiny sweep",
		XLabel:     "SFC size",
		Xs:         []float64{1, 3},
		Algorithms: []Algorithm{MBBE, MINV, RANV},
		Trials:     trials,
		Configure: func(x float64) PointConfig {
			cfg := baseConfig()
			cfg.Net.Nodes = 40
			cfg.Net.VNFKinds = 6
			cfg.SFC.Size = int(x)
			return cfg
		},
	}
}

func TestRunProducesAllCells(t *testing.T) {
	e := tinyExperiment(3)
	points, err := e.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2", len(points))
	}
	for _, p := range points {
		for _, alg := range e.Algorithms {
			cell := p.Cells[alg]
			if cell == nil {
				t.Fatalf("missing cell for %s at x=%v", alg, p.X)
			}
			if cell.Cost.N+cell.Failures != e.Trials {
				t.Fatalf("%s at x=%v: %d successes + %d failures != %d trials",
					alg, p.X, cell.Cost.N, cell.Failures, e.Trials)
			}
			if cell.Cost.N > 0 && cell.Cost.Mean <= 0 {
				t.Fatalf("%s at x=%v: nonpositive mean cost %v", alg, p.X, cell.Cost.Mean)
			}
		}
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	a, err := tinyExperiment(3).Run(42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tinyExperiment(3).Run(42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for alg, cell := range a[i].Cells {
			other := b[i].Cells[alg]
			if cell.Cost.Mean != other.Cost.Mean || cell.Failures != other.Failures {
				t.Fatalf("seed 42 not reproducible for %s at x=%v", alg, a[i].X)
			}
		}
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	seq := tinyExperiment(6)
	par := tinyExperiment(6)
	par.Parallelism = 4
	a, err := seq.Run(42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.Run(42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for alg, cell := range a[i].Cells {
			other := b[i].Cells[alg]
			if cell.Cost.Mean != other.Cost.Mean || cell.Cost.N != other.Cost.N ||
				cell.Failures != other.Failures {
				t.Fatalf("parallel run diverged for %s at x=%v: %+v vs %+v",
					alg, a[i].X, cell.Cost, other.Cost)
			}
		}
	}
}

func TestRunParallelismExceedingTrials(t *testing.T) {
	e := tinyExperiment(2)
	e.Parallelism = 64
	if _, err := e.Run(3); err != nil {
		t.Fatal(err)
	}
}

func TestRunSkipHonored(t *testing.T) {
	e := tinyExperiment(2)
	e.Algorithms = []Algorithm{MBBE, BBE}
	e.Skip = func(alg Algorithm, x float64) bool { return alg == BBE && x > 1 }
	points, err := e.Run(7)
	if err != nil {
		t.Fatal(err)
	}
	bbeAt3 := points[1].Cells[BBE]
	if bbeAt3.Cost.N != 0 || bbeAt3.Failures != 0 {
		t.Fatalf("BBE should be skipped at x=3: %+v", bbeAt3)
	}
	if points[0].Cells[BBE].Cost.N == 0 {
		t.Fatal("BBE should run at x=1")
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	e := tinyExperiment(1)
	e.Configure = func(x float64) PointConfig {
		cfg := baseConfig()
		cfg.Net.Nodes = 0
		return cfg
	}
	if _, err := e.Run(1); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestRunCustomAlgorithm(t *testing.T) {
	e := tinyExperiment(3)
	calls := 0
	e.Algorithms = []Algorithm{"MYALG", MINV}
	e.Custom = map[Algorithm]EmbedFunc{
		"MYALG": func(p *core.Problem, seed int64) (*core.Result, error) {
			calls++
			return core.EmbedMBBE(p)
		},
	}
	points, err := e.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2*3 { // 2 points x 3 trials
		t.Fatalf("custom embedder called %d times, want 6", calls)
	}
	for _, p := range points {
		cell := p.Cells["MYALG"]
		if cell == nil || cell.Cost.N+cell.Failures != 3 {
			t.Fatalf("custom cell wrong at x=%v: %+v", p.X, cell)
		}
		// Our custom is MBBE: it must beat MINV here as usual.
		if cell.Cost.N > 0 && p.Cells[MINV].Cost.N > 0 &&
			cell.Cost.Mean > p.Cells[MINV].Cost.Mean {
			t.Fatalf("custom MBBE lost to MINV at x=%v", p.X)
		}
	}
}

// TestRunCustomOverridesBuiltin: a Custom entry under a built-in name
// takes precedence.
func TestRunCustomOverridesBuiltin(t *testing.T) {
	e := tinyExperiment(1)
	e.Algorithms = []Algorithm{MINV}
	overridden := false
	e.Custom = map[Algorithm]EmbedFunc{
		MINV: func(p *core.Problem, seed int64) (*core.Result, error) {
			overridden = true
			return core.EmbedMBBE(p)
		},
	}
	if _, err := e.Run(2); err != nil {
		t.Fatal(err)
	}
	if !overridden {
		t.Fatal("custom entry did not override the built-in")
	}
}

func TestRunUnknownAlgorithmCountsAsFailure(t *testing.T) {
	e := tinyExperiment(1)
	e.Algorithms = []Algorithm{"NOPE"}
	points, err := e.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Cells["NOPE"].Failures != 1 {
		t.Fatal("unknown algorithm should fail the trial")
	}
}

func TestExperimentCatalog(t *testing.T) {
	exps := Experiments(5)
	for _, name := range Names() {
		e, ok := exps[name]
		if !ok {
			t.Fatalf("experiment %q missing from catalog", name)
		}
		if e.Trials != 5 {
			t.Fatalf("%s trials = %d, want 5", name, e.Trials)
		}
		if len(e.Xs) == 0 || e.Configure == nil {
			t.Fatalf("%s incompletely defined", name)
		}
		// Every x must produce a valid generator config.
		for _, x := range e.Xs {
			cfg := e.Configure(x)
			if err := cfg.Net.Validate(); err != nil {
				t.Fatalf("%s x=%v: %v", name, x, err)
			}
			if err := cfg.SFC.Validate(); err != nil {
				t.Fatalf("%s x=%v: %v", name, x, err)
			}
		}
	}
	if _, err := Lookup("fig6a", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("bogus", 2); err == nil {
		t.Fatal("bogus experiment looked up")
	}
}

func TestFig6aSkipsBBEPastCutoff(t *testing.T) {
	e := Fig6a(1)
	if !e.Skip(BBE, 6) || e.Skip(BBE, 5) || e.Skip(MBBE, 9) {
		t.Fatal("BBE cutoff rule wrong")
	}
}

func TestTables(t *testing.T) {
	e := tinyExperiment(3)
	points, err := e.Run(11)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := CostTable(e, points).Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, alg := range e.Algorithms {
		if !strings.Contains(out, string(alg)) {
			t.Fatalf("cost table missing %s:\n%s", alg, out)
		}
	}
	b.Reset()
	if err := TimeTable(e, points).Render(&b); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := FailureTable(e, points).Render(&b); err != nil {
		t.Fatal(err)
	}
}

func TestReduction(t *testing.T) {
	e := tinyExperiment(5)
	points, err := e.Run(13)
	if err != nil {
		t.Fatal(err)
	}
	frac, ok := Reduction(points, MBBE, RANV)
	if !ok {
		t.Fatal("no comparable points")
	}
	// MBBE should beat the random baseline on average.
	if frac <= 0 {
		t.Fatalf("MBBE vs RANV reduction = %v, want > 0", frac)
	}
	if _, ok := Reduction(points, "NOPE", MINV); ok {
		t.Fatal("reduction against missing algorithm should fail")
	}
}

func TestTrialSeedSpread(t *testing.T) {
	seen := map[int64]bool{}
	for p := 0; p < 10; p++ {
		for tr := 0; tr < 10; tr++ {
			s := trialSeed(1, p, tr)
			if seen[s] {
				t.Fatalf("seed collision at point %d trial %d", p, tr)
			}
			seen[s] = true
		}
	}
}
