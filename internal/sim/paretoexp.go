package sim

import (
	"math"

	"dagsfc/internal/core"
	"dagsfc/internal/delaymodel"
	"dagsfc/internal/latency"
	"dagsfc/internal/stats"
	"dagsfc/internal/tablefmt"
)

// ParetoPoint is one delay-budget factor's aggregate: the cost of meeting
// a bound of factor × (the same instance's unbounded embedding delay).
type ParetoPoint struct {
	// Factor scales the unbounded delay; +Inf is the unbounded reference.
	Factor     float64
	Cost       stats.Summary
	Delay      stats.Summary
	Infeasible int
}

// paretoParams makes propagation significant (0.5 per hop vs 1.0 per
// VNF): under the library default (0.05 per hop) the Table 2 instances
// embed within one hop of optimal delay anyway and no trade-off is
// visible.
func paretoParams() delaymodel.Params {
	return delaymodel.Params{DefaultProcDelay: 1, MergerDelay: 0.1, HopDelay: 0.5}
}

// RunPareto sweeps the end-to-end delay budget for MBBE on Table 2
// instances, exposing the cost-of-latency trade-off the delay-bounded
// embedding mode (core.Options.MaxDelay) navigates. Budgets are relative:
// each instance is first embedded unbounded, then re-embedded with
// MaxDelay = factor × that embedding's delay, so a factor below 1 demands
// a strictly faster embedding than cost-greedy MBBE would pick.
func RunPareto(factors []float64, trials int, seed int64) ([]ParetoPoint, error) {
	params := paretoParams()
	cfg := baseConfig()
	// High price dispersion creates the cost/delay tension: with the
	// Table 2 fluctuation (5%) every instance costs about the same, so
	// the cost-greedy embedding is already delay-minimal and tightening
	// the budget is simply infeasible. At 50% dispersion MBBE detours to
	// cheap instances, and the budget buys that detour back.
	cfg.Net.VNFPriceFluct = 0.5
	points := make([]ParetoPoint, len(factors))
	for i, f := range factors {
		points[i].Factor = f
	}
	accCost := make([]*stats.Accumulator, len(factors))
	accDelay := make([]*stats.Accumulator, len(factors))
	for i := range factors {
		accCost[i] = &stats.Accumulator{}
		accDelay[i] = &stats.Accumulator{}
	}
	for trial := 0; trial < trials; trial++ {
		inst := drawInstance(cfg, trialSeed(seed, 0, trial))
		base := *inst.p
		base.Ledger = nil
		ref, err := core.EmbedMBBE(&base)
		if err != nil {
			for i := range factors {
				points[i].Infeasible++
			}
			continue
		}
		refDelay := latency.Evaluate(&base, ref.Solution, params)
		for i, factor := range factors {
			if math.IsInf(factor, 1) {
				accCost[i].Add(ref.Cost.Total())
				accDelay[i].Add(refDelay)
				continue
			}
			p := *inst.p
			p.Ledger = nil
			opts := core.MBBEOptions()
			opts.MaxDelay = factor * refDelay
			opts.Delay = params
			res, err := core.Embed(&p, opts)
			if err != nil {
				points[i].Infeasible++
				continue
			}
			accCost[i].Add(res.Cost.Total())
			accDelay[i].Add(latency.Evaluate(&p, res.Solution, params))
		}
	}
	for i := range factors {
		points[i].Cost = accCost[i].Summarize()
		points[i].Delay = accDelay[i].Summarize()
	}
	return points, nil
}

// DefaultParetoBounds lists the default budget factors, tight to
// unbounded.
func DefaultParetoBounds() []float64 {
	return []float64{0.6, 0.7, 0.8, 0.9, 1.0, math.Inf(1)}
}

// ParetoTable renders the sweep.
func ParetoTable(points []ParetoPoint) *tablefmt.Table {
	t := &tablefmt.Table{
		Title:  "Delay-bounded MBBE: cost of tightening the delay budget (factor × unbounded delay)",
		Header: []string{"budget factor", "mean cost", "mean delay", "infeasible"},
	}
	for _, p := range points {
		factor := "unbounded"
		if !math.IsInf(p.Factor, 1) {
			factor = tablefmt.F(p.Factor)
		}
		t.AddRow(factor, tablefmt.F(p.Cost.Mean), tablefmt.F(p.Delay.Mean),
			tablefmt.F(float64(p.Infeasible)))
	}
	return t
}
