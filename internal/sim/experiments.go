package sim

import (
	"fmt"

	"dagsfc/internal/netgen"
	"dagsfc/internal/sfcgen"
)

// DefaultTrials is the paper's trial count per simulation point.
const DefaultTrials = 100

// baseConfig returns the paper's Table 2 configuration: network size 500,
// connectivity 6, deploy ratio 50%, price ratio 20%, fluctuation 5%, SFC
// size 5.
func baseConfig() PointConfig {
	return PointConfig{
		Net: netgen.Default(),
		SFC: sfcgen.Default(netgen.Default().VNFKinds),
	}
}

// paperAlgorithms is the comparison set of the paper's figures.
var paperAlgorithms = []Algorithm{MBBE, BBE, MINV, RANV}

// bbeSFCSizeCutoff is where the paper stops evaluating BBE ("the
// inspection of BBE in this simulation ends at 5").
const bbeSFCSizeCutoff = 5

// Experiments returns the full reproduction suite keyed by name; trials
// scales every experiment (use DefaultTrials for the paper's setting).
func Experiments(trials int) map[string]*Experiment {
	exps := []*Experiment{
		Fig6a(trials), Fig6b(trials), Fig6c(trials),
		Fig6d(trials), Fig6e(trials), Fig6f(trials),
		Runtime(trials), Gap(trials), IPGap(trials), Steiner(trials),
	}
	m := make(map[string]*Experiment, len(exps))
	for _, e := range exps {
		m[e.Name] = e
	}
	return m
}

// Fig6a reproduces Fig. 6(a): impact of the SFC size (1–9, BBE to 5).
func Fig6a(trials int) *Experiment {
	return &Experiment{
		Name:       "fig6a",
		Title:      "Fig 6(a): impact of the SFC size",
		XLabel:     "SFC size",
		Xs:         []float64{1, 2, 3, 4, 5, 6, 7, 8, 9},
		Algorithms: paperAlgorithms,
		Trials:     trials,
		Configure: func(x float64) PointConfig {
			cfg := baseConfig()
			cfg.SFC.Size = int(x)
			return cfg
		},
		Skip: func(alg Algorithm, x float64) bool {
			return alg == BBE && x > bbeSFCSizeCutoff
		},
	}
}

// Fig6b reproduces Fig. 6(b): impact of the network size.
func Fig6b(trials int) *Experiment {
	return &Experiment{
		Name:       "fig6b",
		Title:      "Fig 6(b): impact of the network size",
		XLabel:     "network size",
		Xs:         []float64{10, 20, 50, 100, 200, 500, 1000},
		Algorithms: paperAlgorithms,
		Trials:     trials,
		Configure: func(x float64) PointConfig {
			cfg := baseConfig()
			cfg.Net.Nodes = int(x)
			return cfg
		},
	}
}

// Fig6c reproduces Fig. 6(c): impact of the network connectivity.
func Fig6c(trials int) *Experiment {
	return &Experiment{
		Name:       "fig6c",
		Title:      "Fig 6(c): impact of the network connectivity",
		XLabel:     "avg node degree",
		Xs:         []float64{2, 4, 6, 8, 10, 12, 14},
		Algorithms: paperAlgorithms,
		Trials:     trials,
		Configure: func(x float64) PointConfig {
			cfg := baseConfig()
			cfg.Net.Connectivity = x
			return cfg
		},
	}
}

// Fig6d reproduces Fig. 6(d): impact of the VNF deploying ratio.
func Fig6d(trials int) *Experiment {
	return &Experiment{
		Name:       "fig6d",
		Title:      "Fig 6(d): impact of the VNF deploying ratio",
		XLabel:     "deploy ratio",
		Xs:         []float64{0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70},
		Algorithms: paperAlgorithms,
		Trials:     trials,
		Configure: func(x float64) PointConfig {
			cfg := baseConfig()
			cfg.Net.DeployRatio = x
			return cfg
		},
	}
}

// Fig6e reproduces Fig. 6(e): impact of the average price ratio between
// links and VNFs.
func Fig6e(trials int) *Experiment {
	return &Experiment{
		Name:       "fig6e",
		Title:      "Fig 6(e): impact of the price ratio (links/VNFs)",
		XLabel:     "price ratio",
		Xs:         []float64{0.01, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50},
		Algorithms: paperAlgorithms,
		Trials:     trials,
		Configure: func(x float64) PointConfig {
			cfg := baseConfig()
			cfg.Net.PriceRatio = x
			return cfg
		},
	}
}

// Fig6f reproduces Fig. 6(f): impact of the VNF price fluctuation ratio.
func Fig6f(trials int) *Experiment {
	return &Experiment{
		Name:       "fig6f",
		Title:      "Fig 6(f): impact of the VNF price fluctuation ratio",
		XLabel:     "fluctuation",
		Xs:         []float64{0.05, 0.10, 0.20, 0.30, 0.40, 0.50},
		Algorithms: paperAlgorithms,
		Trials:     trials,
		Configure: func(x float64) PointConfig {
			cfg := baseConfig()
			cfg.Net.VNFPriceFluct = x
			return cfg
		},
	}
}

// Runtime reproduces the §4.5/§5.2 complexity claim: BBE's running time
// explodes with the SFC size while MBBE stays flat, without an apparent
// cost degradation. Cost and wall-clock are both reported.
func Runtime(trials int) *Experiment {
	return &Experiment{
		Name:       "runtime",
		Title:      "BBE vs MBBE: running time and cost vs SFC size",
		XLabel:     "SFC size",
		Xs:         []float64{1, 2, 3, 4, 5, 6, 7},
		Algorithms: []Algorithm{BBE, MBBE},
		Trials:     trials,
		Configure: func(x float64) PointConfig {
			cfg := baseConfig()
			cfg.SFC.Size = int(x)
			return cfg
		},
	}
}

// Gap measures the optimality gap of every algorithm against the exact
// solver on instances small enough to enumerate (25 nodes). This
// experiment is not in the paper; it validates the heuristics.
func Gap(trials int) *Experiment {
	return &Experiment{
		Name:       "gap",
		Title:      "Optimality gap vs exact solver (25-node networks)",
		XLabel:     "SFC size",
		Xs:         []float64{1, 2, 3, 4, 5},
		Algorithms: []Algorithm{EXACT, BBE, MBBE, SA, MINV, RANV},
		Trials:     trials,
		Configure: func(x float64) PointConfig {
			cfg := baseConfig()
			cfg.Net.Nodes = 25
			cfg.Net.Connectivity = 4
			cfg.SFC.Size = int(x)
			return cfg
		},
	}
}

// IPGap compares the §3.3 integer program (solved exactly by branch and
// bound) against the DP reference and the heuristics on instances small
// enough for the IP (8-node networks, width-2 layers). The IP may beat
// the DP slightly: its candidate set contains alternative real-paths the
// DP's one-min-cost-path-per-meta model cannot use.
func IPGap(trials int) *Experiment {
	return &Experiment{
		Name:       "ipgap",
		Title:      "Integer program (§3.3) vs DP reference and heuristics (8-node networks)",
		XLabel:     "SFC size",
		Xs:         []float64{1, 2, 3},
		Algorithms: []Algorithm{ILP, EXACT, BBE, MBBE, MINV},
		Trials:     trials,
		Configure: func(x float64) PointConfig {
			cfg := baseConfig()
			cfg.Net.Nodes = 8
			cfg.Net.Connectivity = 3
			cfg.Net.VNFKinds = 4
			cfg.SFC = sfcgen.Config{Size: int(x), LayerWidth: 2, VNFKinds: 4}
			return cfg
		},
	}
}

// Steiner is the ablation of the Steiner multicast extension: MBBE with
// and without shared inter-layer trees, swept over the VNF deploying
// ratio under link-heavy pricing (price ratio 1.0, connectivity 3).
// Shared trees only pay off when a layer's VNFs land several hops apart,
// i.e. in sparse deployments; at the paper's base configuration the
// effect is nil, which the experiment documents. Not in the paper.
func Steiner(trials int) *Experiment {
	return &Experiment{
		Name:       "steiner",
		Title:      "Ablation: Steiner multicast trees for inter-layer meta-paths (price ratio 1.0)",
		XLabel:     "deploy ratio",
		Xs:         []float64{0.02, 0.05, 0.10, 0.50},
		Algorithms: []Algorithm{MBBE, MBBEST},
		Trials:     trials,
		Configure: func(x float64) PointConfig {
			cfg := baseConfig()
			cfg.Net.PriceRatio = 1.0
			cfg.Net.Connectivity = 3
			cfg.Net.DeployRatio = x
			return cfg
		},
	}
}

// Names lists the experiment identifiers in presentation order.
func Names() []string {
	return []string{"fig6a", "fig6b", "fig6c", "fig6d", "fig6e", "fig6f", "runtime", "gap", "ipgap", "steiner"}
}

// Lookup returns the named experiment or an error listing valid names.
func Lookup(name string, trials int) (*Experiment, error) {
	if e, ok := Experiments(trials)[name]; ok {
		return e, nil
	}
	return nil, fmt.Errorf("sim: unknown experiment %q (valid: %v)", name, Names())
}
