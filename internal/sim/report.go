package sim

import (
	"fmt"
	"time"

	"dagsfc/internal/tablefmt"
)

// CostTable renders the aggregated average costs as one row per x value
// and one column per algorithm — the tabular form of a paper figure.
func CostTable(e *Experiment, points []Point) *tablefmt.Table {
	t := &tablefmt.Table{Title: e.Title}
	t.Header = []string{e.XLabel}
	for _, alg := range e.Algorithms {
		t.Header = append(t.Header, string(alg))
	}
	for _, p := range points {
		row := []string{tablefmt.F(p.X)}
		for _, alg := range e.Algorithms {
			cell := p.Cells[alg]
			if cell == nil || cell.Cost.N == 0 {
				row = append(row, "-")
				continue
			}
			row = append(row, tablefmt.F(cell.Cost.Mean))
		}
		t.AddRow(row...)
	}
	return t
}

// TimeTable renders mean wall-clock per embedding attempt.
func TimeTable(e *Experiment, points []Point) *tablefmt.Table {
	t := &tablefmt.Table{Title: e.Title + " — mean time per embedding"}
	t.Header = []string{e.XLabel}
	for _, alg := range e.Algorithms {
		t.Header = append(t.Header, string(alg))
	}
	for _, p := range points {
		row := []string{tablefmt.F(p.X)}
		for _, alg := range e.Algorithms {
			cell := p.Cells[alg]
			if cell == nil || (cell.Cost.N == 0 && cell.Failures == 0) {
				row = append(row, "-")
				continue
			}
			row = append(row, cell.AvgTime.Round(10*time.Microsecond).String())
		}
		t.AddRow(row...)
	}
	return t
}

// FailureTable renders per-cell failure counts (the paper notes the
// benchmarks "do not always result in a solution").
func FailureTable(e *Experiment, points []Point) *tablefmt.Table {
	t := &tablefmt.Table{Title: e.Title + " — failed embeddings"}
	t.Header = []string{e.XLabel}
	for _, alg := range e.Algorithms {
		t.Header = append(t.Header, string(alg))
	}
	for _, p := range points {
		row := []string{tablefmt.F(p.X)}
		for _, alg := range e.Algorithms {
			cell := p.Cells[alg]
			if cell == nil || (cell.Cost.N == 0 && cell.Failures == 0) {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf("%d", cell.Failures))
		}
		t.AddRow(row...)
	}
	return t
}

// Reduction reports the mean relative cost reduction of algorithm a vs b
// across all points where both produced solutions (e.g. "MBBE is ~30%
// cheaper than MINV" in Fig. 6(a)). Points where either is missing are
// skipped; ok is false if no point qualified.
func Reduction(points []Point, a, b Algorithm) (frac float64, ok bool) {
	var sum float64
	var n int
	for _, p := range points {
		ca, cb := p.Cells[a], p.Cells[b]
		if ca == nil || cb == nil || ca.Cost.N == 0 || cb.Cost.N == 0 || cb.Cost.Mean == 0 {
			continue
		}
		sum += 1 - ca.Cost.Mean/cb.Cost.Mean
		n++
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}
