package sim

import (
	"strings"
	"testing"

	"dagsfc/internal/latency"
)

func TestRunDelayHybridWins(t *testing.T) {
	points, err := RunDelay([]int{3, 5}, 3, 5, latency.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.HybridDelay.N == 0 {
			t.Fatalf("size %d: no successful trials", p.Size)
		}
		if p.HybridDelay.Mean >= p.SeqDelay.Mean {
			t.Fatalf("size %d: hybrid delay %v not below sequential %v",
				p.Size, p.HybridDelay.Mean, p.SeqDelay.Mean)
		}
		if p.HybridCost.Mean <= 0 || p.SeqCost.Mean <= 0 {
			t.Fatalf("size %d: nonpositive costs", p.Size)
		}
	}
}

func TestRunDelayDeterministic(t *testing.T) {
	a, err := RunDelay([]int{3}, 2, 8, latency.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDelay([]int{3}, 2, 8, latency.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if a[0].HybridDelay.Mean != b[0].HybridDelay.Mean || a[0].SeqCost.Mean != b[0].SeqCost.Mean {
		t.Fatal("delay experiment not reproducible")
	}
}

func TestDelayTableRenders(t *testing.T) {
	points, err := RunDelay([]int{3}, 1, 2, latency.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := DelayTable(points).Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"hybrid delay", "seq delay", "delay cut", "%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("delay table missing %q:\n%s", want, out)
		}
	}
}
