package sim

import (
	"math"
	"strings"
	"testing"
)

func TestRunParetoShape(t *testing.T) {
	factors := []float64{0.8, 1.0, math.Inf(1)}
	points, err := RunPareto(factors, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// Factor 1.0 admits the unbounded solution itself, so it can never be
	// infeasible when the reference embeds.
	if points[1].Infeasible != 0 {
		t.Fatalf("factor 1.0 infeasible %d times", points[1].Infeasible)
	}
	// The unbounded column mirrors the reference.
	if points[2].Cost.N == 0 {
		t.Fatal("unbounded reference empty")
	}
	// Feasible bounded runs never exceed their budget on average: the
	// bounded mean delay is at most the unbounded mean.
	if points[0].Cost.N > 0 && points[0].Delay.Mean > points[2].Delay.Mean+1e-9 {
		t.Fatalf("bounded delay %v above unbounded %v", points[0].Delay.Mean, points[2].Delay.Mean)
	}
}

func TestRunParetoDeterministic(t *testing.T) {
	factors := DefaultParetoBounds()
	a, err := RunPareto(factors, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPareto(factors, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Cost.Mean != b[i].Cost.Mean || a[i].Infeasible != b[i].Infeasible {
			t.Fatalf("pareto point %d not reproducible", i)
		}
	}
}

func TestParetoTable(t *testing.T) {
	points, err := RunPareto([]float64{1.0, math.Inf(1)}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := ParetoTable(points).Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "unbounded") {
		t.Fatalf("table missing unbounded row:\n%s", b.String())
	}
}
