// Package diag gives every CLI the same diagnostics surface: pprof CPU
// and heap profiles, a telemetry metrics snapshot written on exit, and a
// live debug listener serving /metrics plus /debug/pprof/ while a long
// run executes. A CLI registers its own flags, then hands its body to
// Main, which parses flags, brackets the run with a diagnostics session
// and owns the exit code:
//
//	out := flag.String("o", "", "output file")
//	diag.Main("mytool", func() error { return run(*out) })
//
// Lower-level use (custom flag handling) remains available through
// RegisterFlags / Flags.Start / Session.Close.
package diag

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"

	"dagsfc/internal/telemetry"
)

// Main is the shared CLI skeleton: it registers the diagnostics flags,
// parses the default flag set (so every tool-specific flag must be
// registered before the call), starts the diagnostics session, runs the
// body, closes the session (its error surfaces only if the body
// succeeded) and exits nonzero on failure.
func Main(name string, run func() error) {
	flags := RegisterFlags()
	flag.Parse()
	session, err := flags.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		os.Exit(1)
	}
	runErr := run()
	if err := session.Close(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, runErr)
		os.Exit(1)
	}
}

// Flags holds the diagnostics configuration; zero values disable each
// facility.
type Flags struct {
	// CPUProfile writes a pprof CPU profile covering the whole run.
	CPUProfile string
	// MemProfile writes a pprof heap profile at exit.
	MemProfile string
	// MetricsOut writes the Default telemetry registry at exit,
	// Prometheus text format (or JSON when the path ends in .json).
	MetricsOut string
	// DebugAddr serves /metrics and /debug/pprof/ on this address for the
	// duration of the run, e.g. "localhost:6060".
	DebugAddr string
}

// RegisterFlags registers -cpuprofile, -memprofile, -metrics-out and
// -debug-addr on the default flag set.
func RegisterFlags() *Flags {
	f := &Flags{}
	flag.StringVar(&f.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	flag.StringVar(&f.MemProfile, "memprofile", "", "write a pprof heap profile to this file at exit")
	flag.StringVar(&f.MetricsOut, "metrics-out", "", "write a telemetry metrics snapshot to this file at exit (Prometheus text; .json for JSON)")
	flag.StringVar(&f.DebugAddr, "debug-addr", "", "serve /metrics and /debug/pprof/ on this address while running (e.g. localhost:6060)")
	return f
}

// Session is a started diagnostics bracket; Close flushes everything.
type Session struct {
	flags      Flags
	cpuFile    *os.File
	listener   net.Listener
	httpServer *http.Server
	closeOnce  sync.Once
	closeErr   error
}

// Start applies the configuration: begins the CPU profile and launches
// the debug listener. The returned Session must be Closed (not via defer
// os.Exit paths) to flush profiles and snapshots.
func (f *Flags) Start() (*Session, error) {
	s := &Session{flags: *f}
	if f.CPUProfile != "" {
		file, err := os.Create(f.CPUProfile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(file); err != nil {
			file.Close()
			return nil, err
		}
		s.cpuFile = file
	}
	if f.DebugAddr != "" {
		ln, err := net.Listen("tcp", f.DebugAddr)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("diag: debug listener: %w", err)
		}
		s.listener = ln
		s.httpServer = &http.Server{Handler: telemetry.DebugMux(telemetry.Default())}
		go func() { _ = s.httpServer.Serve(ln) }()
		fmt.Fprintf(os.Stderr, "debug listener on http://%s/metrics and /debug/pprof/\n", ln.Addr())
	}
	return s, nil
}

// Addr reports the debug listener's bound address ("" when disabled),
// useful with a ":0" DebugAddr.
func (s *Session) Addr() string {
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// Close stops the CPU profile, writes the heap profile and metrics
// snapshot, and shuts the debug listener down. Close is idempotent —
// a second call (e.g. a deferred Close racing a signal-driven drain
// path) is a no-op returning the first call's error.
func (s *Session) Close() error {
	s.closeOnce.Do(func() { s.closeErr = s.close() })
	return s.closeErr
}

func (s *Session) close() error {
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(s.cpuFile.Close())
		s.cpuFile = nil
	}
	if s.flags.MemProfile != "" {
		runtime.GC() // get up-to-date heap statistics
		file, err := os.Create(s.flags.MemProfile)
		keep(err)
		if err == nil {
			keep(pprof.WriteHeapProfile(file))
			keep(file.Close())
		}
	}
	if s.flags.MetricsOut != "" {
		keep(WriteMetricsFile(s.flags.MetricsOut))
	}
	if s.httpServer != nil {
		keep(s.httpServer.Close())
		s.httpServer = nil
		s.listener = nil
	}
	return firstErr
}

// WriteMetricsFile snapshots the Default registry into path, as
// Prometheus text or (for .json paths) JSON.
func WriteMetricsFile(path string) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	defer file.Close()
	snap := telemetry.Default().Snapshot()
	if len(path) > 5 && path[len(path)-5:] == ".json" {
		return snap.WriteJSON(file)
	}
	return snap.WritePrometheus(file)
}
