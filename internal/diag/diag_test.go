package diag

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dagsfc/internal/telemetry"
)

func TestSessionProfilesAndMetrics(t *testing.T) {
	dir := t.TempDir()
	flags := Flags{
		CPUProfile: filepath.Join(dir, "cpu.pprof"),
		MemProfile: filepath.Join(dir, "mem.pprof"),
		MetricsOut: filepath.Join(dir, "metrics.prom"),
	}
	telemetry.Default().Counter("diag_test_hits_total", "").Inc()
	s, err := flags.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{flags.CPUProfile, flags.MemProfile, flags.MetricsOut} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("%s not written: %v", path, err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", path)
		}
	}
	data, err := os.ReadFile(flags.MetricsOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "diag_test_hits_total") {
		t.Fatalf("metrics snapshot missing counter:\n%s", data)
	}
}

func TestDebugListenerServesMetricsAndPprof(t *testing.T) {
	flags := Flags{DebugAddr: "127.0.0.1:0"}
	s, err := flags.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Addr() == "" {
		t.Fatal("no bound address")
	}
	for _, path := range []string{"/metrics", "/debug/pprof/"} {
		resp, err := http.Get("http://" + s.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d, body %s", path, resp.StatusCode, body)
		}
	}
}

func TestWriteMetricsFileJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := WriteMetricsFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(strings.TrimSpace(string(data)), "{") {
		t.Fatalf("not JSON: %s", data)
	}
}

func TestSessionCloseIdempotent(t *testing.T) {
	dir := t.TempDir()
	flags := Flags{CPUProfile: filepath.Join(dir, "cpu.pprof")}
	s, err := flags.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A second Close (diag.Main closes once, a deferred Close in the run
	// function may close again) must be a no-op returning the same result,
	// not a double pprof.StopCPUProfile or a rewritten file.
	st1, err := os.Stat(flags.CPUProfile)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	st2, err := os.Stat(flags.CPUProfile)
	if err != nil {
		t.Fatal(err)
	}
	if !st1.ModTime().Equal(st2.ModTime()) || st1.Size() != st2.Size() {
		t.Fatal("second Close rewrote the profile")
	}
}
