// Package anneal embeds DAG-SFCs by simulated annealing over VNF
// placements: start from the MINV greedy solution, propose relocations of
// single DAG positions (re-instantiating the affected meta-paths with
// min-cost paths), and accept by the Metropolis rule under a geometric
// cooling schedule. It is a metaheuristic reference point between the
// paper's constructive heuristics (BBE/MBBE) and the exact solvers:
// slower than MBBE, placement-global where MBBE is layer-local.
package anneal

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"dagsfc/internal/baseline"
	"dagsfc/internal/core"
	"dagsfc/internal/graph"
	"dagsfc/internal/network"
	"dagsfc/internal/telemetry"
)

// Options tunes the annealing schedule.
type Options struct {
	// Iterations is the number of proposed moves. 0 means
	// DefaultIterations.
	Iterations int
	// InitTemp is the starting temperature, in cost units. 0 derives it
	// from the initial solution (5% of its cost).
	InitTemp float64
	// Cooling is the per-iteration geometric factor; 0 means one that
	// reaches ~1% of InitTemp by the final iteration.
	Cooling float64
}

// DefaultIterations bounds the default schedule.
const DefaultIterations = 2000

// Embed anneals the problem and returns the best feasible solution found.
func Embed(p *core.Problem, rng *rand.Rand, opts Options) (res *core.Result, err error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	iters := opts.Iterations
	if iters == 0 {
		iters = DefaultIterations
	}

	// Telemetry: the annealer's work units are proposal evaluations
	// ("search nodes"), solution builds ("searches" — each build routes
	// every meta-path over cached Dijkstra trees) and accepted moves
	// ("candidates"). The MINV warm start records its own sample under
	// alg="minv".
	begin := time.Now()
	var evaluations, builds, accepted int
	defer func() {
		telemetry.RecordEmbed(telemetry.EmbedSample{
			Alg:         "sa",
			Elapsed:     time.Since(begin),
			Failed:      err != nil,
			SearchNodes: evaluations,
			Searches:    builds,
			Candidates:  accepted,
		})
	}()

	// Initial state: the greedy baseline.
	init, err := baseline.EmbedMINV(p)
	if err != nil {
		return nil, err
	}
	s := newState(p)
	cur, err := s.fromSolution(init.Solution)
	if err != nil {
		return nil, err
	}
	curCost := init.Cost.Total()
	bestAssign := cur.clone()
	bestCost := curCost

	temp := opts.InitTemp
	if temp == 0 {
		temp = 0.05 * curCost
	}
	cooling := opts.Cooling
	if cooling == 0 && iters > 0 {
		cooling = math.Pow(0.01, 1/float64(iters))
	}

	for i := 0; i < iters; i++ {
		proposal, ok := s.mutate(cur, rng)
		if !ok {
			temp *= cooling
			continue
		}
		evaluations++
		builds++
		cost, feasible := s.evaluate(proposal)
		if feasible && (cost < curCost || rng.Float64() < math.Exp((curCost-cost)/math.Max(temp, 1e-12))) {
			accepted++
			cur = proposal
			curCost = cost
			if cost < bestCost {
				bestCost = cost
				bestAssign = proposal.clone()
			}
		}
		temp *= cooling
	}

	builds++
	sol, ok := s.build(bestAssign)
	if !ok {
		return nil, fmt.Errorf("%w: annealer lost its feasible incumbent", core.ErrNoEmbedding)
	}
	if err := core.Validate(p, sol); err != nil {
		return nil, fmt.Errorf("anneal: incumbent invalid: %w", err)
	}
	cb, err := core.ComputeCost(p, sol)
	if err != nil {
		return nil, err
	}
	return &core.Result{Solution: sol, Cost: cb}, nil
}

// assignment is the annealer's state: one host per DAG position, in the
// position order of core's LayerSpecs (layer VNFs, then the merger).
type assignment []graph.NodeID

func (a assignment) clone() assignment { return append(assignment(nil), a...) }

// state holds the immutable problem context and caches.
type state struct {
	p      *core.Problem
	ledger *network.Ledger
	specs  []core.LayerSpec
	// posVNF and posLayer flatten the positions.
	posVNF   []network.VNFID
	posLayer []int
	// hosts[i] lists feasible hosts of position i.
	hosts [][]graph.NodeID
	trees map[graph.NodeID]*graph.ShortestTree
}

func newState(p *core.Problem) *state {
	ledger := p.Ledger
	if ledger == nil {
		ledger = network.NewLedger(p.Net)
		p.Ledger = ledger
	}
	s := &state{p: p, ledger: ledger, specs: p.LayerSpecs(),
		trees: make(map[graph.NodeID]*graph.ShortestTree)}
	merger := p.Net.Catalog.Merger()
	for _, spec := range s.specs {
		for _, f := range spec.VNFs {
			s.addPosition(spec.Index, f)
		}
		if spec.Merger {
			s.addPosition(spec.Index, merger)
		}
	}
	return s
}

func (s *state) addPosition(layer int, f network.VNFID) {
	s.posVNF = append(s.posVNF, f)
	s.posLayer = append(s.posLayer, layer)
	var hosts []graph.NodeID
	for _, v := range s.p.Net.NodesWith(f) {
		if s.ledger.InstanceResidual(v, f) >= s.p.Rate {
			hosts = append(hosts, v)
		}
	}
	s.hosts = append(s.hosts, hosts)
}

// fromSolution extracts the assignment vector of an existing solution.
func (s *state) fromSolution(sol *core.Solution) (assignment, error) {
	var a assignment
	for li, le := range sol.Layers {
		a = append(a, le.Nodes...)
		if s.specs[li].Merger {
			a = append(a, le.MergerNode)
		}
	}
	if len(a) != len(s.posVNF) {
		return nil, fmt.Errorf("anneal: solution has %d positions, want %d", len(a), len(s.posVNF))
	}
	return a, nil
}

// mutate proposes a single-position relocation.
func (s *state) mutate(cur assignment, rng *rand.Rand) (assignment, bool) {
	if len(cur) == 0 {
		return nil, false
	}
	pos := rng.Intn(len(cur))
	alts := s.hosts[pos]
	if len(alts) < 2 {
		return nil, false
	}
	next := cur.clone()
	for tries := 0; tries < 4; tries++ {
		v := alts[rng.Intn(len(alts))]
		if v != cur[pos] {
			next[pos] = v
			return next, true
		}
	}
	return nil, false
}

// evaluate prices an assignment, returning feasible=false when some
// meta-path cannot be routed or a capacity constraint breaks.
func (s *state) evaluate(a assignment) (float64, bool) {
	sol, ok := s.build(a)
	if !ok {
		return 0, false
	}
	if err := core.Validate(s.p, sol); err != nil {
		return 0, false
	}
	cb, err := core.ComputeCost(s.p, sol)
	if err != nil {
		return 0, false
	}
	return cb.Total(), true
}

// build materializes an assignment into a solution with min-cost paths
// per meta-path (the same instantiation rule the baselines use).
func (s *state) build(a assignment) (*core.Solution, bool) {
	sol := &core.Solution{}
	prevEnd := s.p.Src
	idx := 0
	for _, spec := range s.specs {
		le := core.LayerEmbedding{}
		width := len(spec.VNFs)
		le.Nodes = append(le.Nodes, a[idx:idx+width]...)
		if spec.Merger {
			le.MergerNode = a[idx+width]
			idx += width + 1
		} else {
			le.MergerNode = le.Nodes[0]
			idx += width
		}
		for _, v := range le.Nodes {
			path, ok := s.pathBetween(prevEnd, v)
			if !ok {
				return nil, false
			}
			le.InterPaths = append(le.InterPaths, path)
		}
		if spec.Merger {
			for _, v := range le.Nodes {
				path, ok := s.pathBetween(v, le.MergerNode)
				if !ok {
					return nil, false
				}
				le.InnerPaths = append(le.InnerPaths, path)
			}
		}
		sol.Layers = append(sol.Layers, le)
		prevEnd = le.EndNode()
	}
	tail, ok := s.pathBetween(prevEnd, s.p.Dst)
	if !ok {
		return nil, false
	}
	sol.TailPath = tail
	return sol, true
}

func (s *state) pathBetween(a, b graph.NodeID) (graph.Path, bool) {
	if a == b {
		return graph.EmptyPath(a), true
	}
	tree, ok := s.trees[a]
	if !ok {
		tree = s.p.Net.G.Dijkstra(a, s.ledger.CostOptions(s.p.Rate))
		s.trees[a] = tree
	}
	return tree.PathTo(b)
}
