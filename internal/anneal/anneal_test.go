package anneal

import (
	"errors"
	"math/rand"
	"testing"

	"dagsfc/internal/baseline"
	"dagsfc/internal/core"
	"dagsfc/internal/exact"
	"dagsfc/internal/graph"
	"dagsfc/internal/netgen"
	"dagsfc/internal/network"
	"dagsfc/internal/sfc"
	"dagsfc/internal/sfcgen"
)

func randomProblem(rng *rand.Rand, nodes, kinds, sfcSize int) *core.Problem {
	cfg := netgen.Default()
	cfg.Nodes = nodes
	cfg.VNFKinds = kinds
	cfg.Connectivity = 4
	net := netgen.MustGenerate(cfg, rng)
	s := sfcgen.MustGenerate(sfcgen.Config{Size: sfcSize, LayerWidth: 3, VNFKinds: kinds}, rng)
	return &core.Problem{
		Net: net, SFC: s,
		Src: graph.NodeID(rng.Intn(nodes)), Dst: graph.NodeID(rng.Intn(nodes)),
		Rate: 1, Size: 1,
	}
}

func TestAnnealNeverWorseThanMINV(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 40, 6, 5)
		minv, err := baseline.EmbedMINV(p)
		if err != nil {
			continue
		}
		q := *p
		q.Ledger = nil
		res, err := Embed(&q, rand.New(rand.NewSource(seed+100)), Options{Iterations: 500})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := core.Validate(&q, res.Solution); err != nil {
			t.Fatalf("seed %d: invalid: %v", seed, err)
		}
		if res.Cost.Total() > minv.Cost.Total()+1e-9 {
			t.Fatalf("seed %d: anneal %v worse than its MINV start %v",
				seed, res.Cost.Total(), minv.Cost.Total())
		}
	}
}

func TestAnnealImprovesOnMINV(t *testing.T) {
	// Aggregate improvement must be strictly positive: annealing that
	// never moves is a bug.
	var minvSum, annealSum float64
	runs := 0
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 40, 6, 5)
		minv, err := baseline.EmbedMINV(p)
		if err != nil {
			continue
		}
		q := *p
		q.Ledger = nil
		res, err := Embed(&q, rand.New(rand.NewSource(seed+200)), Options{Iterations: 800})
		if err != nil {
			continue
		}
		minvSum += minv.Cost.Total()
		annealSum += res.Cost.Total()
		runs++
	}
	if runs == 0 {
		t.Skip("no feasible instances")
	}
	if annealSum >= minvSum {
		t.Fatalf("anneal aggregate %v did not improve on MINV %v", annealSum, minvSum)
	}
}

func TestAnnealNotBelowOptimum(t *testing.T) {
	if testing.Short() {
		t.Skip("exact cross-check skipped in -short mode")
	}
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 20, 5, 4)
		opt, err := exact.Embed(p, exact.Limits{})
		if err != nil {
			continue
		}
		q := *p
		q.Ledger = nil
		res, err := Embed(&q, rand.New(rand.NewSource(seed)), Options{Iterations: 1500})
		if err != nil {
			continue
		}
		if res.Cost.Total() < opt.Cost.Total()-1e-6 {
			t.Fatalf("seed %d: anneal %v beat 'exact' %v", seed, res.Cost.Total(), opt.Cost.Total())
		}
	}
}

func TestAnnealDeterministicGivenRNG(t *testing.T) {
	p1 := randomProblem(rand.New(rand.NewSource(7)), 30, 5, 4)
	p2 := randomProblem(rand.New(rand.NewSource(7)), 30, 5, 4)
	a, errA := Embed(p1, rand.New(rand.NewSource(1)), Options{Iterations: 300})
	b, errB := Embed(p2, rand.New(rand.NewSource(1)), Options{Iterations: 300})
	if (errA == nil) != (errB == nil) {
		t.Fatal(errA, errB)
	}
	if errA == nil && a.Cost.Total() != b.Cost.Total() {
		t.Fatalf("nondeterministic: %v vs %v", a.Cost.Total(), b.Cost.Total())
	}
}

func TestAnnealInfeasiblePropagates(t *testing.T) {
	g := graph.New(2)
	g.MustAddEdge(0, 1, 1, 10)
	net := network.New(g, network.Catalog{N: 1})
	// Category 1 never deployed: MINV fails, anneal must too.
	p := &core.Problem{
		Net: net,
		SFC: sfc.DAGSFC{Layers: []sfc.Layer{{VNFs: []network.VNFID{1}}}},
		Src: 0, Dst: 1, Rate: 1, Size: 1,
	}
	if _, err := Embed(p, rand.New(rand.NewSource(1)), Options{}); !errors.Is(err, core.ErrNoEmbedding) {
		t.Fatalf("err = %v, want ErrNoEmbedding", err)
	}
}

func TestAnnealInvalidProblem(t *testing.T) {
	p := randomProblem(rand.New(rand.NewSource(1)), 20, 5, 3)
	p.Rate = 0
	if _, err := Embed(p, rand.New(rand.NewSource(1)), Options{}); err == nil {
		t.Fatal("invalid problem accepted")
	}
}

func TestAnnealZeroIterationsReturnsStart(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := randomProblem(rng, 30, 5, 4)
	minv, err := baseline.EmbedMINV(p)
	if err != nil {
		t.Skip("MINV infeasible")
	}
	q := *p
	q.Ledger = nil
	res, err := Embed(&q, rand.New(rand.NewSource(1)), Options{Iterations: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Negative iterations: the loop never runs; incumbent is the start.
	if res.Cost.Total() != minv.Cost.Total() {
		t.Fatalf("zero-iteration anneal %v != MINV %v", res.Cost.Total(), minv.Cost.Total())
	}
}
