package network

import (
	"fmt"
	"sort"

	"dagsfc/internal/graph"
)

// LedgerState is a ledger's committed-usage view in a portable, exactly
// round-trippable form — the snapshot body the durability layer persists.
// Only nonzero entries appear, sorted by ID, so identical states always
// serialize to identical bytes. Quarantined fault capacity is NOT part of
// the state: faults are replayed as events and re-applied on recovery,
// which reconstructs the quarantine table exactly (fault amounts are pure
// functions of the immutable network).
type LedgerState struct {
	Edges     []EdgeUsage     `json:"edges,omitempty"`
	Instances []InstanceUsage `json:"instances,omitempty"`
}

// EdgeUsage is one edge's committed bandwidth.
type EdgeUsage struct {
	Edge graph.EdgeID `json:"edge"`
	Used float64      `json:"used"`
}

// InstanceUsage is one VNF instance's committed processing capacity.
type InstanceUsage struct {
	Node graph.NodeID `json:"node"`
	VNF  VNFID        `json:"vnf"`
	Used float64      `json:"used"`
}

// ExportState captures the ledger's current combined usage (base chain
// plus overlay deltas) as raw float64 values. The values are the ledger's
// own accumulated sums — no re-derivation — so importing them into a
// fresh root reproduces every residual bit-for-bit regardless of the
// commit/release history that produced them.
func (l *Ledger) ExportState() LedgerState {
	var st LedgerState
	for e := 0; e < l.net.G.NumEdges(); e++ {
		if u := l.EdgeUsed(graph.EdgeID(e)); u != 0 {
			st.Edges = append(st.Edges, EdgeUsage{Edge: graph.EdgeID(e), Used: u})
		}
	}
	// Key-union walk over the chain (the Flatten pattern): every instance
	// with nonzero combined usage appears in at least one map.
	seen := make(map[instKey]bool)
	for cur := l; cur != nil; cur = cur.base {
		for k := range cur.instUsed {
			if seen[k] {
				continue
			}
			seen[k] = true
			if u := l.InstanceUsed(k.node, k.vnf); u != 0 {
				st.Instances = append(st.Instances, InstanceUsage{Node: k.node, VNF: k.vnf, Used: u})
			}
		}
	}
	sort.Slice(st.Instances, func(i, k int) bool {
		a, b := st.Instances[i], st.Instances[k]
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.VNF < b.VNF
	})
	return st
}

// NewLedgerFromState returns a fresh root ledger over net holding exactly
// the exported usage — the float-exact inverse of ExportState. Entries
// referencing edges or instances the network does not have are errors
// (the snapshot belongs to a different substrate).
func NewLedgerFromState(net *Network, st LedgerState) (*Ledger, error) {
	l := NewLedger(net)
	for _, e := range st.Edges {
		if int(e.Edge) < 0 || int(e.Edge) >= net.G.NumEdges() {
			return nil, fmt.Errorf("network: state references edge %d of a %d-edge network", e.Edge, net.G.NumEdges())
		}
		l.edgeUsed[e.Edge] = e.Used
	}
	for _, in := range st.Instances {
		if _, ok := net.Instance(in.Node, in.VNF); !ok {
			return nil, fmt.Errorf("network: state references missing instance f(%d) on node %d", in.VNF, in.Node)
		}
		l.instUsed[instKey{in.Node, in.VNF}] = in.Used
	}
	return l, nil
}
