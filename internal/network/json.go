package network

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"dagsfc/internal/graph"
)

// fileFormat is the on-disk JSON representation used by the cmd/ tools.
type fileFormat struct {
	Nodes     int          `json:"nodes"`
	VNFKinds  int          `json:"vnf_kinds"`
	Links     []linkFormat `json:"links"`
	Instances []instFormat `json:"instances"`
}

type linkFormat struct {
	A        int     `json:"a"`
	B        int     `json:"b"`
	Price    float64 `json:"price"`
	Capacity float64 `json:"capacity"`
}

type instFormat struct {
	Node     int     `json:"node"`
	VNF      int     `json:"vnf"`
	Price    float64 `json:"price"`
	Capacity float64 `json:"capacity"`
}

// WriteJSON serializes the network (topology, prices, capacities, VNF
// deployment) in a stable, human-diffable order.
func (n *Network) WriteJSON(w io.Writer) error {
	ff := fileFormat{Nodes: n.G.NumNodes(), VNFKinds: n.Catalog.N}
	for _, e := range n.G.Edges() {
		ff.Links = append(ff.Links, linkFormat{A: int(e.A), B: int(e.B), Price: e.Price, Capacity: e.Capacity})
	}
	n.Instances(func(inst Instance) {
		ff.Instances = append(ff.Instances, instFormat{
			Node: int(inst.Node), VNF: int(inst.VNF), Price: inst.Price, Capacity: inst.Capacity,
		})
	})
	sort.Slice(ff.Instances, func(i, j int) bool {
		a, b := ff.Instances[i], ff.Instances[j]
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.VNF < b.VNF
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ff)
}

// ReadJSON parses a network previously written by WriteJSON.
func ReadJSON(r io.Reader) (*Network, error) {
	var ff fileFormat
	if err := json.NewDecoder(r).Decode(&ff); err != nil {
		return nil, fmt.Errorf("network: decode: %w", err)
	}
	if ff.Nodes < 0 || ff.VNFKinds < 0 {
		return nil, fmt.Errorf("network: negative nodes (%d) or vnf_kinds (%d)", ff.Nodes, ff.VNFKinds)
	}
	g := graph.New(ff.Nodes)
	for i, l := range ff.Links {
		if _, err := g.AddEdge(graph.NodeID(l.A), graph.NodeID(l.B), l.Price, l.Capacity); err != nil {
			return nil, fmt.Errorf("network: link %d: %w", i, err)
		}
	}
	net := New(g, Catalog{N: ff.VNFKinds})
	for i, inst := range ff.Instances {
		if err := net.AddInstance(graph.NodeID(inst.Node), VNFID(inst.VNF), inst.Price, inst.Capacity); err != nil {
			return nil, fmt.Errorf("network: instance %d: %w", i, err)
		}
	}
	return net, nil
}
