package network

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"dagsfc/internal/graph"
)

// viewFingerprint renders a ledger's entire residual view (edges and
// deployed instances, quarantine included) as a comparable string.
func viewFingerprint(l *Ledger) string {
	g := l.net.G
	out := make([]byte, 0, 256)
	for e := 0; e < g.NumEdges(); e++ {
		out = append(out, fmt.Sprintf("e%d=%.9f;", e, l.EdgeResidual(graph.EdgeID(e)))...)
	}
	for v := 0; v < g.NumNodes(); v++ {
		for f := VNFID(1); f <= l.net.Catalog.Merger(); f++ {
			if _, ok := l.net.Instance(graph.NodeID(v), f); !ok {
				continue
			}
			out = append(out, fmt.Sprintf("i%d.%d=%.9f;", v, f, l.InstanceResidual(graph.NodeID(v), f))...)
		}
	}
	return string(out)
}

// TestViewEpochIdentifiesView is the sequential epoch-soundness property:
// across a long random interleaving of reservations, releases, commits,
// discards, snapshots, rebases and faults, every time any ledger of the
// family reports a view epoch, the view it presents must be bit-identical
// to every other view ever reported under that epoch.
func TestViewEpochIdentifiesView(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		net := testNet(t)
		root := NewLedger(net)
		live := root.Overlay()
		var snaps []*Ledger
		activeFaults := 0

		seen := make(map[uint64]string)
		check := func(l *Ledger, step int, what string) {
			epoch := l.ViewEpoch()
			fp := viewFingerprint(l)
			if prev, ok := seen[epoch]; ok && prev != fp {
				t.Fatalf("seed %d step %d (%s): epoch %d presented two views:\n%s\nvs\n%s",
					seed, step, what, epoch, prev, fp)
			}
			seen[epoch] = fp
			if !l.SameView(epoch) {
				t.Fatalf("seed %d step %d (%s): SameView false immediately after ViewEpoch", seed, step, what)
			}
		}

		for step := 0; step < 400; step++ {
			switch op := rng.Intn(10); op {
			case 0, 1:
				_ = live.ReserveEdge(graph.EdgeID(rng.Intn(net.G.NumEdges())), float64(rng.Intn(4)))
			case 2:
				live.ReleaseEdge(graph.EdgeID(rng.Intn(net.G.NumEdges())), float64(rng.Intn(4)))
			case 3:
				_ = live.ReserveInstance(graph.NodeID(rng.Intn(4)), VNFID(1+rng.Intn(3)), float64(rng.Intn(3)))
			case 4:
				live.ReleaseInstance(graph.NodeID(rng.Intn(4)), VNFID(1+rng.Intn(3)), float64(rng.Intn(3)))
			case 5:
				snaps = append(snaps, live.Snapshot())
				if len(snaps) > 4 {
					snaps = snaps[1:]
				}
			case 6:
				if rng.Intn(2) == 0 {
					if err := live.ApplyFault(Fault{Kind: FaultLinkDown, Link: graph.EdgeID(rng.Intn(net.G.NumEdges()))}); err == nil {
						activeFaults++
					}
				} else if activeFaults == 0 {
					// Nothing to restore; mutate an edge instead.
					live.ReleaseEdge(0, 1)
				}
			case 7:
				// Rebase, like the server's commit loop: fold the live view
				// into a fresh root and start a new overlay over it.
				live = live.Flatten().Overlay()
			case 8:
				if err := live.Commit(); err != nil {
					t.Fatalf("seed %d step %d: commit against frozen-by-us base failed: %v", seed, step, err)
				}
			case 9:
				live.Discard()
			}
			check(live, step, "live")
			for i, s := range snaps {
				check(s, step, fmt.Sprintf("snap%d", i))
			}
		}
	}
}

// TestEpochPinsAndInvalidation pins the individual epoch rules the cache
// relies on.
func TestEpochPinsAndInvalidation(t *testing.T) {
	net := testNet(t)
	root := NewLedger(net)
	live := root.Overlay()

	// Unmutated family: overlay inherits the root's epoch; snapshots taken
	// back to back share the live overlay's epoch.
	if live.ViewEpoch() != root.ViewEpoch() {
		t.Fatal("fresh overlay does not share its base's epoch")
	}
	s1, s2 := live.Snapshot(), live.Snapshot()
	if s1.ViewEpoch() != s2.ViewEpoch() || s1.ViewEpoch() != live.ViewEpoch() {
		t.Fatal("snapshots of an unchanged overlay do not share its epoch")
	}

	// A mutation moves the live epoch but leaves earlier snapshots pinned
	// and valid: their (frozen-base) view genuinely did not change.
	before := s1.ViewEpoch()
	if err := live.ReserveEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	if live.ViewEpoch() == before {
		t.Fatal("mutation did not move the live overlay's epoch")
	}
	if !s1.SameView(before) {
		t.Fatal("sibling mutation invalidated a frozen snapshot's pin")
	}

	// A fault invalidates every pin in the family — including snapshots,
	// whose residuals change through the root's quarantine pointer — and
	// apply-then-restore does not restore the old pins (no ABA).
	if err := live.ApplyFault(Fault{Kind: FaultLinkDown, Link: 1}); err != nil {
		t.Fatal(err)
	}
	if s1.SameView(before) {
		t.Fatal("fault did not invalidate a snapshot's pinned view")
	}
	postFault := s1.ViewEpoch()
	if postFault == before {
		t.Fatal("re-pin after fault reused the stale epoch")
	}
	if err := live.RestoreFault(Fault{Kind: FaultLinkDown, Link: 1}); err != nil {
		t.Fatal(err)
	}
	if s1.SameView(postFault) {
		t.Fatal("restore did not invalidate the post-fault pin (ABA)")
	}

	// Commit folds the overlay into its base and re-pins both at one fresh
	// shared epoch: their views are identical afterwards.
	if err := live.Commit(); err != nil {
		t.Fatal(err)
	}
	if live.ViewEpoch() != root.ViewEpoch() {
		t.Fatal("commit left overlay and base claiming different epochs for the same view")
	}
}

// TestEpochCacheCoherenceRace is the -race property test for the tentpole
// contract: concurrent mutators and cache-filling queriers, serialized
// exactly like the server (mutations under a write lock, snapshots and
// their queries under read locks), must never produce a cache hit whose
// tree differs from a fresh DijkstraWith on the querier's current ledger.
func TestEpochCacheCoherenceRace(t *testing.T) {
	g := graph.New(24)
	rng := rand.New(rand.NewSource(42))
	for v := 1; v < 24; v++ {
		g.MustAddEdge(graph.NodeID(rng.Intn(v)), graph.NodeID(v), 1+rng.Float64()*3, 4+float64(rng.Intn(6)))
	}
	for i := 0; i < 30; i++ {
		a, b := rng.Intn(24), rng.Intn(24)
		if a != b {
			_, _ = g.AddEdge(graph.NodeID(a), graph.NodeID(b), 1+rng.Float64()*3, 4+float64(rng.Intn(6)))
		}
	}
	net := New(g, Catalog{N: 2})
	root := NewLedger(net)

	var mu sync.RWMutex // the server's state mutex, in miniature
	live := root.Overlay()
	cache := graph.NewTreeCache(0)
	const demand = 2.0
	fingerprint := math.Float64bits(demand)

	stop := make(chan struct{})
	var mutWG sync.WaitGroup
	mutWG.Add(1)
	go func() {
		defer mutWG.Done()
		mrng := rand.New(rand.NewSource(7))
		var faults []Fault
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			mu.Lock()
			switch mrng.Intn(8) {
			case 0, 1, 2:
				_ = live.ReserveEdge(graph.EdgeID(mrng.Intn(g.NumEdges())), float64(1+mrng.Intn(2)))
			case 3, 4:
				live.ReleaseEdge(graph.EdgeID(mrng.Intn(g.NumEdges())), float64(1+mrng.Intn(2)))
			case 5:
				f := Fault{Kind: FaultLinkDown, Link: graph.EdgeID(mrng.Intn(g.NumEdges()))}
				if err := live.ApplyFault(f); err == nil {
					faults = append(faults, f)
				}
			case 6:
				if n := len(faults); n > 0 {
					_ = live.RestoreFault(faults[n-1])
					faults = faults[:n-1]
				}
			case 7:
				live = live.Flatten().Overlay()
			}
			mu.Unlock()
		}
	}()

	var qWG sync.WaitGroup
	errCh := make(chan error, 4)
	for q := 0; q < 4; q++ {
		qWG.Add(1)
		go func(q int) {
			defer qWG.Done()
			qrng := rand.New(rand.NewSource(int64(100 + q)))
			scratch := graph.NewScratch()
			for i := 0; i < 300; i++ {
				src := graph.NodeID(qrng.Intn(g.NumNodes()))
				// Hold the read lock for the whole query+verify window,
				// exactly as a server worker holds its snapshot: no fault
				// or rebase can interleave with the comparison.
				mu.RLock()
				snap := live.Snapshot()
				epoch := snap.ViewEpoch()
				opts := snap.CostOptions(demand)
				key := graph.TreeCacheKey{Src: src, Epoch: epoch, Fingerprint: fingerprint}
				fresh := g.DijkstraWith(scratch, src, opts)
				if cached, ok := cache.Lookup(key); ok {
					if err := treesDiffer(g, fresh, cached); err != nil {
						mu.RUnlock()
						errCh <- fmt.Errorf("querier %d iter %d epoch %d: cache hit differs from fresh DijkstraWith: %w", q, i, epoch, err)
						return
					}
				} else if snap.SameView(epoch) {
					cache.Insert(key, g.Dijkstra(src, opts))
				}
				mu.RUnlock()
			}
		}(q)
	}
	qWG.Wait()
	close(stop)
	mutWG.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	hits, misses, _ := cache.Stats()
	if hits == 0 {
		t.Fatalf("property test never hit the cache (misses=%d): hit path unexercised", misses)
	}
}

// treesDiffer compares two shortest-path trees over g by their exported
// surface: distances and the reconstructed path to every node.
func treesDiffer(g *graph.Graph, a, b *graph.ShortestTree) error {
	if !reflect.DeepEqual(a.Dist, b.Dist) {
		return fmt.Errorf("Dist mismatch")
	}
	for v := 0; v < g.NumNodes(); v++ {
		ap, aok := a.PathTo(graph.NodeID(v))
		bp, bok := b.PathTo(graph.NodeID(v))
		if aok != bok || !reflect.DeepEqual(ap, bp) {
			return fmt.Errorf("PathTo(%d) mismatch: %v/%v vs %v/%v", v, ap, aok, bp, bok)
		}
	}
	return nil
}
