package network

import (
	"testing"

	"dagsfc/internal/graph"
)

// TestFaultEdgeDownPinAndRestore covers the hard-failure link kind: the
// residual is pinned to exactly zero (not driven negative like the
// quarantine kinds), reservations and overlay commits fail across it, and
// restore is float-exact because no capacity amount ever moved.
func TestFaultEdgeDownPinAndRestore(t *testing.T) {
	net := testNet(t)
	l := NewLedger(net)
	if err := l.ReserveEdge(1, 4); err != nil {
		t.Fatal(err)
	}
	before := l.EdgeResidual(1)

	f := Fault{Kind: FaultEdgeDown, Link: 1}
	if err := l.ApplyFault(f); err != nil {
		t.Fatal(err)
	}
	if !l.EdgeDown(1) || l.EdgeDown(0) {
		t.Fatalf("EdgeDown(1)=%v EdgeDown(0)=%v", l.EdgeDown(1), l.EdgeDown(0))
	}
	// Unlike link-down (which quarantines the capacity amount and reports
	// -4 here), the hard failure pins to the literal zero.
	if got := l.EdgeResidual(1); got != 0 {
		t.Fatalf("downed residual = %v, want exactly 0", got)
	}
	// No capacity was quarantined — the pin is a count, not an amount.
	if got := l.EdgeQuarantined(1); got != 0 {
		t.Fatalf("EdgeQuarantined = %v, want 0 (pure pin)", got)
	}
	if err := l.ReserveEdge(1, 1); err == nil {
		t.Fatal("reserve on downed edge succeeded")
	}
	if !l.FaultsActive() {
		t.Fatal("FaultsActive = false with a live edge-down")
	}

	// Overlapping downs: one restore leaves the edge pinned.
	if err := l.ApplyFault(f); err != nil {
		t.Fatal(err)
	}
	if err := l.RestoreFault(f); err != nil {
		t.Fatal(err)
	}
	if !l.EdgeDown(1) {
		t.Fatal("edge came back up with one of two faults still active")
	}
	if err := l.RestoreFault(f); err != nil {
		t.Fatal(err)
	}
	if got := l.EdgeResidual(1); got != before {
		t.Fatalf("post-restore residual = %v, want exactly %v", got, before)
	}
	if l.FaultsActive() {
		t.Fatal("FaultsActive = true after full restore")
	}
	if err := l.RestoreFault(f); err == nil {
		t.Fatal("unmatched restore succeeded")
	}
}

// TestFaultEdgeDownCommitAcross pins the serving-layer semantics: a
// speculative overlay taken before an edge-down must fail its re-validating
// commit while the pin is live and succeed after the restore.
func TestFaultEdgeDownCommitAcross(t *testing.T) {
	net := testNet(t)
	base := NewLedger(net)
	ov := base.Overlay()
	if err := ov.ReserveEdge(0, 7); err != nil {
		t.Fatal(err)
	}
	f := Fault{Kind: FaultEdgeDown, Link: 0}
	if err := ov.ApplyFault(f); err != nil {
		t.Fatal(err)
	}
	if err := ov.Commit(); err == nil {
		t.Fatal("commit across edge-down succeeded")
	}
	if got := base.EdgeUsed(0); got != 0 {
		t.Fatalf("failed commit touched the base: EdgeUsed = %v", got)
	}
	if err := base.RestoreFault(f); err != nil {
		t.Fatal(err)
	}
	if err := ov.Commit(); err != nil {
		t.Fatalf("commit after restore: %v", err)
	}
}

// TestFaultNodeDownPinsExactZero checks the node-down hard-pin: with
// committed usage on an incident edge and a hosted instance, both report
// the literal zero while the node is down (pre-pin semantics reported a
// negative deficit), and restore is float-exact.
func TestFaultNodeDownPinsExactZero(t *testing.T) {
	net := testNet(t)
	l := NewLedger(net)
	if err := l.ReserveEdge(1, 4); err != nil {
		t.Fatal(err)
	}
	if err := l.ReserveInstance(2, 2, 3); err != nil {
		t.Fatal(err)
	}
	edgeBefore, instBefore := l.EdgeResidual(1), l.InstanceResidual(2, 2)

	f := Fault{Kind: FaultNodeDown, Node: 2}
	if err := l.ApplyFault(f); err != nil {
		t.Fatal(err)
	}
	if got := l.EdgeResidual(1); got != 0 {
		t.Fatalf("incident edge residual = %v, want exactly 0", got)
	}
	if !l.EdgeDown(1) {
		t.Fatal("EdgeDown(1) = false with endpoint node down")
	}
	if got := l.InstanceResidual(2, 2); got != 0 {
		t.Fatalf("hosted instance residual = %v, want exactly 0", got)
	}
	if err := l.RestoreFault(f); err != nil {
		t.Fatal(err)
	}
	if got := l.EdgeResidual(1); got != edgeBefore {
		t.Fatalf("post-restore edge residual = %v, want exactly %v", got, edgeBefore)
	}
	if got := l.InstanceResidual(2, 2); got != instBefore {
		t.Fatalf("post-restore instance residual = %v, want exactly %v", got, instBefore)
	}
}

// TestEdgeResidualsBitExactUnderPins extends the bulk-export contract to
// hard failures: with usage, quarantine, edge-down and node-down all live
// at once, EdgeResiduals must agree bitwise with the scalar EdgeResidual on
// every edge.
func TestEdgeResidualsBitExactUnderPins(t *testing.T) {
	net := testNet(t)
	l := NewLedger(net)
	if err := l.ReserveEdge(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := l.ReserveEdge(1, 4); err != nil {
		t.Fatal(err)
	}
	for _, f := range []Fault{
		{Kind: FaultLinkDegrade, Link: 0, Fraction: 0.3},
		{Kind: FaultEdgeDown, Link: 1},
		{Kind: FaultNodeDown, Node: 2},
	} {
		if err := l.ApplyFault(f); err != nil {
			t.Fatal(err)
		}
	}
	ov := l.Overlay()
	ov.ReleaseEdge(0, 1)
	for _, led := range []*Ledger{l, ov} {
		bulk := led.EdgeResiduals(nil)
		for e := range bulk {
			if want := led.EdgeResidual(graph.EdgeID(e)); bulk[e] != want {
				t.Fatalf("edge %d: bulk %v != scalar %v", e, bulk[e], want)
			}
		}
	}
}

func TestFaultEdgeDownValidate(t *testing.T) {
	net := testNet(t)
	l := NewLedger(net)
	for _, f := range []Fault{
		{Kind: FaultEdgeDown, Link: 99},
		{Kind: FaultEdgeDown, Link: -1},
	} {
		if err := l.ApplyFault(f); err == nil {
			t.Fatalf("ApplyFault(%+v) succeeded", f)
		}
	}
	if s := (Fault{Kind: FaultEdgeDown, Link: 7}).String(); s != "edge-down 7" {
		t.Fatalf("String() = %q", s)
	}
}
