package network

import (
	"encoding/json"
	"math/rand"
	"testing"

	"dagsfc/internal/graph"
)

// TestExportImportExact drives a ledger (root + overlay, reserves and
// releases with awkward fractional amounts), exports, JSON round-trips,
// imports, and demands bit-identical usage on every edge and instance.
func TestExportImportExact(t *testing.T) {
	net := testNet(t)
	l := NewLedger(net).Overlay()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		e := graph.EdgeID(rng.Intn(net.G.NumEdges()))
		amt := rng.Float64() * 0.3 // non-integral: float-exactness matters
		if rng.Intn(4) == 0 {
			l.ReleaseEdge(e, amt)
		} else if l.EdgeResidual(e) > amt {
			if err := l.ReserveEdge(e, amt); err != nil {
				t.Fatal(err)
			}
		}
	}
	for node := range 4 {
		for _, vnf := range net.VNFsAt(graph.NodeID(node)) {
			amt := rng.Float64()
			if l.InstanceResidual(graph.NodeID(node), vnf) > amt {
				if err := l.ReserveInstance(graph.NodeID(node), vnf, amt); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	st := l.ExportState()
	blob, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back LedgerState
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	restored, err := NewLedgerFromState(net, back)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < net.G.NumEdges(); e++ {
		if got, want := restored.EdgeUsed(graph.EdgeID(e)), l.EdgeUsed(graph.EdgeID(e)); got != want {
			t.Fatalf("edge %d: restored %v, want %v (diff %g)", e, got, want, got-want)
		}
	}
	for _, in := range st.Instances {
		if got, want := restored.InstanceUsed(in.Node, in.VNF), l.InstanceUsed(in.Node, in.VNF); got != want {
			t.Fatalf("instance (%d,%d): restored %v, want %v", in.Node, in.VNF, got, want)
		}
	}
}

// TestExportDeterministic pins that identical states export to identical
// bytes (snapshot equality is byte equality).
func TestExportDeterministic(t *testing.T) {
	net := testNet(t)
	mk := func() []byte {
		l := NewLedger(net).Overlay()
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 200; i++ {
			e := graph.EdgeID(rng.Intn(net.G.NumEdges()))
			if amt := rng.Float64() * 0.2; l.EdgeResidual(e) > amt {
				_ = l.ReserveEdge(e, amt)
			}
		}
		b, err := json.Marshal(l.ExportState())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := mk(), mk()
	if string(a) != string(b) {
		t.Fatal("identical histories exported different bytes")
	}
}

func TestImportRejectsForeignState(t *testing.T) {
	net := testNet(t)
	if _, err := NewLedgerFromState(net, LedgerState{
		Edges: []EdgeUsage{{Edge: graph.EdgeID(net.G.NumEdges() + 5), Used: 1}},
	}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if _, err := NewLedgerFromState(net, LedgerState{
		Instances: []InstanceUsage{{Node: 0, VNF: 9999, Used: 1}},
	}); err == nil {
		t.Fatal("missing instance accepted")
	}
}
