// Package network models the paper's target cloud network (§3.2): a priced,
// capacitated graph of geo-dispersed cloud nodes on which third-party
// providers deploy VNF instances. It adds the VNF catalog (regular
// categories f(1)..f(n), the dummy f(0) and the merger f(n+1)), per-node
// instance tables with rental prices and processing capacities, the V_i
// node indices, and a residual-capacity ledger that provides the
// "real-time network graph" view used by Algorithm 1.
package network

import (
	"fmt"
	"sort"

	"dagsfc/internal/graph"
)

// VNFID identifies a VNF category. 0 is the dummy VNF f(0); 1..N are the
// regular categories f(1)..f(N); N+1 is the merger f(N+1).
type VNFID int

// Dummy is the dummy VNF f(0) assigned to the source/destination layers of
// the stretched SFC S+ (§3.3.2). It is free and is hosted implicitly by
// every node.
const Dummy VNFID = 0

// Catalog describes the VNF categories offered in the network.
type Catalog struct {
	// N is the number of regular VNF categories f(1)..f(N).
	N int
}

// Merger returns the ID of the merger pseudo-VNF f(N+1) that integrates the
// intermediate results of a parallel VNF set.
func (c Catalog) Merger() VNFID { return VNFID(c.N + 1) }

// IsRegular reports whether id is one of f(1)..f(N).
func (c Catalog) IsRegular(id VNFID) bool { return id >= 1 && int(id) <= c.N }

// Valid reports whether id is any category known to the catalog, including
// the dummy and the merger.
func (c Catalog) Valid(id VNFID) bool { return id >= 0 && int(id) <= c.N+1 }

// Regulars returns f(1)..f(N) in order.
func (c Catalog) Regulars() []VNFID {
	out := make([]VNFID, c.N)
	for i := range out {
		out[i] = VNFID(i + 1)
	}
	return out
}

// Instance is a rentable VNF deployment f_v(i) on a node: a rental price
// c_{v,f(i)} per unit of traffic rate and a processing capacity r_{v,f(i)}.
type Instance struct {
	Node     graph.NodeID
	VNF      VNFID
	Price    float64
	Capacity float64
}

type instKey struct {
	node graph.NodeID
	vnf  VNFID
}

// Network is the target network: the priced graph plus the VNF deployment.
type Network struct {
	G       *graph.Graph
	Catalog Catalog

	instances map[instKey]*Instance
	byVNF     map[VNFID][]graph.NodeID // V_i, in insertion order
	byNode    map[graph.NodeID][]VNFID // F_v, in insertion order
}

// New returns a network over g with the given catalog and no instances.
func New(g *graph.Graph, catalog Catalog) *Network {
	return &Network{
		G:         g,
		Catalog:   catalog,
		instances: make(map[instKey]*Instance),
		byVNF:     make(map[VNFID][]graph.NodeID),
		byNode:    make(map[graph.NodeID][]VNFID),
	}
}

// AddInstance deploys category vnf on node with the given price and
// capacity. At most one instance per (node, category) pair may exist; the
// dummy VNF cannot be deployed (it is implicit everywhere).
func (n *Network) AddInstance(node graph.NodeID, vnf VNFID, price, capacity float64) error {
	if node < 0 || int(node) >= n.G.NumNodes() {
		return fmt.Errorf("network: node %d out of range", node)
	}
	if vnf == Dummy {
		return fmt.Errorf("network: the dummy VNF cannot be deployed explicitly")
	}
	if !n.Catalog.Valid(vnf) {
		return fmt.Errorf("network: VNF %d outside catalog (N=%d)", vnf, n.Catalog.N)
	}
	if price < 0 || capacity < 0 {
		return fmt.Errorf("network: negative price/capacity for VNF %d on node %d", vnf, node)
	}
	key := instKey{node, vnf}
	if _, dup := n.instances[key]; dup {
		return fmt.Errorf("network: VNF %d already deployed on node %d", vnf, node)
	}
	n.instances[key] = &Instance{Node: node, VNF: vnf, Price: price, Capacity: capacity}
	n.byVNF[vnf] = append(n.byVNF[vnf], node)
	n.byNode[node] = append(n.byNode[node], vnf)
	return nil
}

// MustAddInstance is AddInstance that panics on error.
func (n *Network) MustAddInstance(node graph.NodeID, vnf VNFID, price, capacity float64) {
	if err := n.AddInstance(node, vnf, price, capacity); err != nil {
		panic(err)
	}
}

// Instance returns the deployment of vnf on node, if any. The dummy VNF is
// reported as a free, infinite-capacity instance on every node.
func (n *Network) Instance(node graph.NodeID, vnf VNFID) (Instance, bool) {
	if vnf == Dummy {
		if node < 0 || int(node) >= n.G.NumNodes() {
			return Instance{}, false
		}
		return Instance{Node: node, VNF: Dummy, Price: 0, Capacity: graph.Inf}, true
	}
	inst, ok := n.instances[instKey{node, vnf}]
	if !ok {
		return Instance{}, false
	}
	return *inst, true
}

// HasVNF reports whether node hosts category vnf.
func (n *Network) HasVNF(node graph.NodeID, vnf VNFID) bool {
	_, ok := n.Instance(node, vnf)
	return ok
}

// NodesWith returns V_i: every node hosting category vnf, in deployment
// order. The caller must not modify the returned slice.
func (n *Network) NodesWith(vnf VNFID) []graph.NodeID { return n.byVNF[vnf] }

// VNFsAt returns F_v: the categories hosted on node, sorted ascending.
func (n *Network) VNFsAt(node graph.NodeID) []VNFID {
	out := append([]VNFID(nil), n.byNode[node]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumInstances reports the number of deployed instances.
func (n *Network) NumInstances() int { return len(n.instances) }

// Instances calls fn for every deployed instance in unspecified order.
func (n *Network) Instances(fn func(Instance)) {
	for _, inst := range n.instances {
		fn(*inst)
	}
}

// AvgVNFPrice reports the mean rental price over all deployed instances of
// regular categories (used by the price-ratio experiment definitions).
func (n *Network) AvgVNFPrice() float64 {
	var sum float64
	var count int
	for _, inst := range n.instances {
		if n.Catalog.IsRegular(inst.VNF) {
			sum += inst.Price
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// AvgLinkPrice reports the mean link price.
func (n *Network) AvgLinkPrice() float64 {
	m := n.G.NumEdges()
	if m == 0 {
		return 0
	}
	var sum float64
	for _, e := range n.G.Edges() {
		sum += e.Price
	}
	return sum / float64(m)
}

// Clone deep-copies the network, sharing nothing with the original. The
// underlying graph is cloned too.
func (n *Network) Clone() *Network {
	c := New(n.G.Clone(), n.Catalog)
	for key, inst := range n.instances {
		cp := *inst
		c.instances[key] = &cp
	}
	for vnf, nodes := range n.byVNF {
		c.byVNF[vnf] = append([]graph.NodeID(nil), nodes...)
	}
	for node, vnfs := range n.byNode {
		c.byNode[node] = append([]VNFID(nil), vnfs...)
	}
	return c
}
