package network

import (
	"fmt"
	"maps"
	"sync"
	"sync/atomic"

	"dagsfc/internal/graph"
)

// Ledger tracks how much bandwidth of every link and how much processing
// capacity of every VNF instance is already committed. It is the
// "real-time network graph G_1" that Algorithm 1 consults: embedding
// algorithms reserve capacity as they commit sub-solutions, and online
// multi-flow scenarios carry one ledger across many requests.
//
// A Ledger is either a root (dense usage arrays, created by NewLedger) or
// an overlay (created by Overlay): a sparse copy-on-write delta over a base
// ledger. Overlays make speculative embeds O(changes) instead of O(network)
// — the serving layer hands each worker an overlay snapshot rather than a
// full Clone — and can be folded back with Commit or dropped with Discard.
// While an overlay is live its base must not be mutated; the overlay reads
// through to it on every query.
//
// The zero Ledger is not usable; create one with NewLedger.
type Ledger struct {
	net *Network
	// base is nil for root ledgers; overlays read through to it.
	base *Ledger
	// edgeUsed holds absolute committed bandwidth per edge (root only).
	edgeUsed []float64
	// edgeDelta holds the overlay's sparse bandwidth deltas (overlay only).
	edgeDelta map[graph.EdgeID]float64
	// instUsed holds absolute committed capacity on roots and deltas on
	// overlays.
	instUsed map[instKey]float64
	// quar is the active fault quarantine (root only; overlays read through
	// to their root's table). See fault.go for the publication protocol.
	quar quarPointer

	// View-epoch machinery (see ViewEpoch). ep holds the counters shared by
	// every ledger of one family — a root plus everything derived from it
	// via Overlay/Snapshot/Flatten/Clone. gen counts this ledger's own
	// visible mutations; it feeds the pin signatures of descendants that
	// read through this ledger. view/sig are the ledger's current pin,
	// guarded by pinMu (mutations re-pin inline, readers validate).
	ep    *epochCell
	gen   atomic.Uint64
	pinMu sync.Mutex
	view  uint64
	sig   uint64
}

// epochCell is the per-family counter block. state is the monotonic epoch
// source: every pin that needs a fresh epoch draws a unique value from it.
// fault counts quarantine mutations; because faults publish through the
// root's atomic pointer, they change the residual view of every ledger in
// the family at once, so the fault counter is part of every pin signature.
type epochCell struct {
	state atomic.Uint64
	fault atomic.Uint64
}

// chainSig computes the ledger's current pin signature: the family fault
// generation plus the mutation counters of every ledger this one reads
// through (itself included). Each term is monotonic, so the sum is too —
// an unchanged signature proves no relevant mutation happened, with no
// ABA window.
func (l *Ledger) chainSig() uint64 {
	s := l.ep.fault.Load()
	for cur := l; cur != nil; cur = cur.base {
		s += cur.gen.Load()
	}
	return s
}

// bumpEpoch re-pins the ledger after one of its own visible mutations. It
// must run inside the same critical section as the mutation (the ledger
// mutation contract already requires caller serialization): any reader
// that can observe the new state through a later Snapshot also observes
// the new epoch, so a tree can never be cached under the old epoch with
// the new residuals or vice versa.
func (l *Ledger) bumpEpoch() {
	l.gen.Add(1)
	v := l.ep.state.Add(1)
	l.pinMu.Lock()
	l.view = v
	l.sig = l.chainSig()
	l.pinMu.Unlock()
}

// pinned returns the ledger's current (view, sig) pair, refreshing a
// stale pin first. Constructors derive a child's pin arithmetically from
// this snapshot instead of re-reading the counters, so a concurrent fault
// cannot slip between "inherit parent's epoch" and "record the signature
// it was valid under".
func (l *Ledger) pinned() (view, sig uint64) {
	l.pinMu.Lock()
	defer l.pinMu.Unlock()
	if l.sig != l.chainSig() {
		l.view = l.ep.state.Add(1)
		l.sig = l.chainSig()
	}
	return l.view, l.sig
}

// ViewEpoch returns an identifier of the ledger's current residual view,
// for use as a cache key: within one ledger family, two ledgers reporting
// the same epoch present bit-identical residuals as long as SameView
// still holds for that epoch on both. The epoch is pinned when the ledger
// is created (inherited from its parent, whose view it shares) and
// refreshed to a fresh monotonic value whenever the pin goes stale — the
// ledger mutated, an ancestor it reads through mutated, or a fault
// changed the family's quarantine.
func (l *Ledger) ViewEpoch() uint64 {
	v, _ := l.pinned()
	return v
}

// SameView reports whether the ledger still presents the exact view it
// presented when ViewEpoch returned epoch. It is the cache-insert guard:
// a tree computed from this ledger may be published under epoch only if
// SameView(epoch) holds after the computation — otherwise a concurrent
// fault or ancestor mutation changed the residuals mid-computation and
// the tree must not outlive the request. Conservative by construction:
// any relevant counter movement invalidates, never the reverse.
func (l *Ledger) SameView(epoch uint64) bool {
	l.pinMu.Lock()
	defer l.pinMu.Unlock()
	return l.view == epoch && l.sig == l.chainSig()
}

// NewLedger returns an empty root ledger over net.
func NewLedger(net *Network) *Ledger {
	l := &Ledger{
		net:      net,
		edgeUsed: make([]float64, net.G.NumEdges()),
		instUsed: make(map[instKey]float64),
		ep:       &epochCell{},
	}
	l.view = l.ep.state.Add(1)
	l.sig = l.chainSig()
	return l
}

// Network returns the network the ledger accounts for.
func (l *Ledger) Network() *Network { return l.net }

// IsOverlay reports whether l is a copy-on-write overlay.
func (l *Ledger) IsOverlay() bool { return l.base != nil }

// OverlayLen reports how many distinct edges and instances the overlay has
// touched (0 for a root ledger) — the cost driver of Snapshot and Commit,
// which the server uses to decide when to rebase.
func (l *Ledger) OverlayLen() int { return len(l.edgeDelta) + len(l.instUsed) }

// Overlay returns a new empty copy-on-write overlay whose reads fall
// through to l. The base must not be mutated while the overlay is in use.
func (l *Ledger) Overlay() *Ledger {
	view, sig := l.pinned()
	return &Ledger{
		net:       l.net,
		base:      l,
		edgeDelta: make(map[graph.EdgeID]float64),
		instUsed:  make(map[instKey]float64),
		ep:        l.ep,
		// An empty overlay presents its parent's exact view, and its pin
		// chain is the parent's chain plus its own (zero) counter.
		view: view,
		sig:  sig,
	}
}

// EdgeResidual reports the remaining bandwidth of edge e, net of any
// capacity active faults have quarantined. It can be negative while a
// fault holds capacity that committed flows are still using. A hard
// failure — an edge-down fault on e, or a node-down fault on either
// endpoint — pins the residual to exactly zero regardless of usage.
func (l *Ledger) EdgeResidual(e graph.EdgeID) float64 {
	r := l.net.G.Edge(e).Capacity - l.EdgeUsed(e)
	if q := l.quarantineTable(); q != nil {
		r -= q.edge[e]
		ed := l.net.G.Edge(e)
		if q.edgePinned(e, ed.A, ed.B) {
			return 0
		}
	}
	return r
}

// EdgeUsed reports the committed bandwidth of edge e.
func (l *Ledger) EdgeUsed(e graph.EdgeID) float64 {
	if l.base != nil {
		return l.base.EdgeUsed(e) + l.edgeDelta[e]
	}
	return l.edgeUsed[e]
}

// InstanceResidual reports the remaining processing capacity of the
// instance of vnf on node, net of any capacity active faults have
// quarantined. Missing instances have zero residual; the dummy VNF is
// infinite (node faults black-hole its links instead).
func (l *Ledger) InstanceResidual(node graph.NodeID, vnf VNFID) float64 {
	inst, ok := l.net.Instance(node, vnf)
	if !ok {
		return 0
	}
	r := inst.Capacity - l.InstanceUsed(node, vnf)
	if q := l.quarantineTable(); q != nil {
		r -= q.inst[instKey{node, vnf}]
		if q.node[node] > 0 {
			// Hosting node is hard-down: pin to exactly zero.
			return 0
		}
	}
	return r
}

// InstanceUsed reports the committed capacity of the instance of vnf on
// node.
func (l *Ledger) InstanceUsed(node graph.NodeID, vnf VNFID) float64 {
	if l.base != nil {
		return l.base.InstanceUsed(node, vnf) + l.instUsed[instKey{node, vnf}]
	}
	return l.instUsed[instKey{node, vnf}]
}

// ReserveEdge commits amount bandwidth on edge e, failing without side
// effects if the residual is insufficient.
func (l *Ledger) ReserveEdge(e graph.EdgeID, amount float64) error {
	if amount < 0 {
		return fmt.Errorf("network: negative reservation %v on edge %d", amount, e)
	}
	if l.EdgeResidual(e) < amount-capacityEps {
		return fmt.Errorf("network: edge %d over capacity: residual %v < demand %v",
			e, l.EdgeResidual(e), amount)
	}
	if l.base != nil {
		l.setEdgeDelta(e, l.edgeDelta[e]+amount)
		l.bumpEpoch()
		return nil
	}
	l.edgeUsed[e] += amount
	l.bumpEpoch()
	return nil
}

// ReleaseEdge returns amount bandwidth to edge e. Total usage never drops
// below zero, on either a root or the combined view of an overlay.
func (l *Ledger) ReleaseEdge(e graph.EdgeID, amount float64) {
	if l.base != nil {
		d := l.edgeDelta[e] - amount
		if l.base.EdgeUsed(e)+d < 0 {
			d = -l.base.EdgeUsed(e)
		}
		l.setEdgeDelta(e, d)
		l.bumpEpoch()
		return
	}
	l.edgeUsed[e] -= amount
	if l.edgeUsed[e] < 0 {
		l.edgeUsed[e] = 0
	}
	l.bumpEpoch()
}

func (l *Ledger) setEdgeDelta(e graph.EdgeID, d float64) {
	if d == 0 {
		delete(l.edgeDelta, e)
		return
	}
	l.edgeDelta[e] = d
}

// ReserveInstance commits amount processing capacity on the instance of
// vnf at node, failing without side effects if insufficient. Reserving the
// dummy VNF is a no-op.
func (l *Ledger) ReserveInstance(node graph.NodeID, vnf VNFID, amount float64) error {
	if vnf == Dummy {
		return nil
	}
	if amount < 0 {
		return fmt.Errorf("network: negative reservation %v on instance (%d,%d)", amount, node, vnf)
	}
	if l.InstanceResidual(node, vnf) < amount-capacityEps {
		return fmt.Errorf("network: instance f(%d) on node %d over capacity: residual %v < demand %v",
			vnf, node, l.InstanceResidual(node, vnf), amount)
	}
	key := instKey{node, vnf}
	if l.base != nil {
		l.setInstDelta(key, l.instUsed[key]+amount)
		l.bumpEpoch()
		return nil
	}
	l.instUsed[key] += amount
	l.bumpEpoch()
	return nil
}

// ReleaseInstance returns amount capacity to the instance of vnf at node.
// Total usage never drops below zero, matching ReleaseEdge.
func (l *Ledger) ReleaseInstance(node graph.NodeID, vnf VNFID, amount float64) {
	if vnf == Dummy {
		return
	}
	key := instKey{node, vnf}
	if l.base != nil {
		d := l.instUsed[key] - amount
		if l.base.InstanceUsed(node, vnf)+d <= 0 {
			d = -l.base.InstanceUsed(node, vnf)
		}
		l.setInstDelta(key, d)
		l.bumpEpoch()
		return
	}
	l.instUsed[key] -= amount
	if l.instUsed[key] <= 0 {
		delete(l.instUsed, key)
	}
	l.bumpEpoch()
}

func (l *Ledger) setInstDelta(key instKey, d float64) {
	if d == 0 {
		delete(l.instUsed, key)
		return
	}
	l.instUsed[key] = d
}

// Commit folds an overlay's deltas into its base ledger. Every positive
// delta is re-validated against the base first — the base may have moved
// since the overlay was taken (a stale-snapshot commit in the server) —
// and on any violation the commit fails without touching the base. After a
// successful commit the overlay is empty and remains usable.
func (l *Ledger) Commit() error {
	if l.base == nil {
		return fmt.Errorf("network: Commit on a root ledger (not an overlay)")
	}
	for e, d := range l.edgeDelta {
		if d > 0 && l.base.EdgeResidual(e) < d-capacityEps {
			return fmt.Errorf("network: commit conflict: edge %d residual %v < delta %v",
				e, l.base.EdgeResidual(e), d)
		}
	}
	for k, d := range l.instUsed {
		if d > 0 && l.base.InstanceResidual(k.node, k.vnf) < d-capacityEps {
			return fmt.Errorf("network: commit conflict: instance f(%d) on node %d residual %v < delta %v",
				k.vnf, k.node, l.base.InstanceResidual(k.node, k.vnf), d)
		}
	}
	for e, d := range l.edgeDelta {
		if d >= 0 {
			// Validated reservation: cannot overflow the base.
			l.base.edgeOrDeltaAdd(e, d)
		} else {
			l.base.ReleaseEdge(e, -d)
		}
	}
	for k, d := range l.instUsed {
		if d >= 0 {
			l.base.instOrDeltaAdd(k, d)
		} else {
			l.base.ReleaseInstance(k.node, k.vnf, -d)
		}
	}
	clear(l.edgeDelta)
	clear(l.instUsed)
	// The base's view changed (one bump covers the whole fold; the
	// Release* calls above already bumped for their share). The overlay's
	// combined view is unchanged — its deltas folded into the base it
	// reads through — so it re-pins at the base's fresh epoch rather than
	// going stale: after a commit, overlay and base present the same view
	// under the same epoch.
	l.base.bumpEpoch()
	view, sig := l.base.pinned()
	l.pinMu.Lock()
	l.view = view
	l.sig = sig + l.gen.Load()
	l.pinMu.Unlock()
	return nil
}

// edgeOrDeltaAdd adds a validated positive amount to the base's usage,
// whether the base is itself a root or an overlay (stacked overlays fold
// one level at a time).
func (l *Ledger) edgeOrDeltaAdd(e graph.EdgeID, d float64) {
	if l.base != nil {
		l.setEdgeDelta(e, l.edgeDelta[e]+d)
		return
	}
	l.edgeUsed[e] += d
}

func (l *Ledger) instOrDeltaAdd(k instKey, d float64) {
	if l.base != nil {
		l.setInstDelta(k, l.instUsed[k]+d)
		return
	}
	l.instUsed[k] += d
	if l.instUsed[k] <= 0 {
		delete(l.instUsed, k)
	}
}

// Discard drops every uncommitted delta; the overlay is empty afterwards
// and remains usable. On a root ledger it is a no-op.
func (l *Ledger) Discard() {
	if l.base == nil {
		return
	}
	clear(l.edgeDelta)
	clear(l.instUsed)
	l.bumpEpoch()
}

// Snapshot returns an independent what-if copy of the ledger's current
// view. For an overlay this is O(overlay deltas): the copy shares the
// (frozen) base and clones only the sparse delta maps — the cheap
// replacement for the per-speculative-embed Clone the server used to pay.
// For a root ledger it is a full Clone.
func (l *Ledger) Snapshot() *Ledger {
	if l.base == nil {
		return l.Clone()
	}
	view, sig := l.pinned()
	return &Ledger{
		net:       l.net,
		base:      l.base,
		edgeDelta: maps.Clone(l.edgeDelta),
		instUsed:  maps.Clone(l.instUsed),
		ep:        l.ep,
		// The snapshot presents l's exact view but reads through l.base,
		// not l: its pin chain drops l's own counter, so later mutations
		// of l (which the snapshot cannot see) do not invalidate it.
		view: view,
		sig:  sig - l.gen.Load(),
	}
}

// Flatten folds the ledger's entire view (base chain plus deltas) into a
// fresh independent root ledger. The server rebases onto a Flatten when an
// overlay's delta map has grown past the point where snapshots stay cheap.
func (l *Ledger) Flatten() *Ledger {
	c := &Ledger{
		net:      l.net,
		edgeUsed: make([]float64, l.net.G.NumEdges()),
		instUsed: make(map[instKey]float64),
		ep:       l.ep,
	}
	for e := range c.edgeUsed {
		c.edgeUsed[e] = l.EdgeUsed(graph.EdgeID(e))
	}
	// Every instance with nonzero combined usage appears in at least one
	// map of the chain (deltas and absolutes alike), so the union of keys
	// covers the view.
	for cur := l; cur != nil; cur = cur.base {
		for k := range cur.instUsed {
			if _, seen := c.instUsed[k]; seen {
				continue
			}
			if u := l.InstanceUsed(k.node, k.vnf); u > 0 {
				c.instUsed[k] = u
			}
		}
	}
	// The flattened root inherits the active quarantine (the table is
	// immutable, so sharing the pointer is safe); the server's rebase must
	// not lose in-flight faults.
	c.quar.Store(l.quarantineTable())
	// Pin at a fresh epoch: the flattened root presents the same residuals
	// as l, but a fresh unique epoch is always sound and keeps the rebase
	// from aliasing an epoch whose source chain it no longer shares.
	c.view = c.ep.state.Add(1)
	c.sig = c.chainSig()
	return c
}

// Clone returns an independent copy of the ledger (sharing the immutable
// network). Search algorithms use clones for what-if exploration. Cloning
// an overlay flattens it into a root.
func (l *Ledger) Clone() *Ledger {
	if l.base != nil {
		return l.Flatten()
	}
	view, sig := l.pinned()
	c := &Ledger{
		net:      l.net,
		edgeUsed: append([]float64(nil), l.edgeUsed...),
		instUsed: maps.Clone(l.instUsed),
		ep:       l.ep,
		// The clone presents l's exact view right now and reads through
		// nobody: its pin chain is just its own (zero) counter, so it
		// inherits l's epoch minus l's own generation term. Later
		// mutations of l diverge the views, but l re-pins itself then and
		// stops claiming this epoch.
		view: view,
		sig:  sig - l.gen.Load(),
	}
	c.quar.Store(l.quar.Load())
	return c
}

// EdgeResiduals fills dst with the residual bandwidth of every edge —
// dst[e] bitwise equal to EdgeResidual(e) — growing dst only if it lacks
// capacity, and returns it. One call replaces NumEdges individual queries
// (each of which walks the overlay chain and hashes into the delta maps),
// which is what makes cost-view compilation a dense O(edges) pass. The
// float operations replay EdgeResidual's exact order: committed usage is
// accumulated base-first along the overlay chain, then subtracted from
// capacity, then the quarantine is subtracted — so capacity-floor
// comparisons against the result can never disagree with the scalar path.
func (l *Ledger) EdgeResiduals(dst []float64) []float64 {
	ne := l.net.G.NumEdges()
	if cap(dst) < ne {
		dst = make([]float64, ne)
	} else {
		dst = dst[:ne]
	}
	l.fillEdgeUsed(dst)
	edges := l.net.G.Edges()
	for e := range dst {
		dst[e] = edges[e].Capacity - dst[e]
	}
	if q := l.quarantineTable(); q != nil {
		for e, amt := range q.edge {
			if int(e) < ne {
				dst[e] -= amt
			}
		}
		// Hard-failure pins last, mirroring the scalar path's early return:
		// both paths store the literal constant 0, so the bitwise contract
		// holds through down faults too.
		for e := range q.down {
			if int(e) < ne {
				dst[e] = 0
			}
		}
		for v := range q.node {
			for _, arc := range l.net.G.Neighbors(v) {
				if int(arc.Edge) < ne {
					dst[arc.Edge] = 0
				}
			}
		}
	}
	return dst
}

// fillEdgeUsed writes EdgeUsed of every edge into dst, applying overlay
// deltas base-first so each slot sees the same addition order as the
// recursive scalar EdgeUsed.
func (l *Ledger) fillEdgeUsed(dst []float64) {
	if l.base != nil {
		l.base.fillEdgeUsed(dst)
		for e, d := range l.edgeDelta {
			if int(e) < len(dst) {
				dst[e] += d
			}
		}
		return
	}
	copy(dst, l.edgeUsed)
	// A root sized before later AddEdge calls may track fewer edges than
	// the graph; the extra slots carry zero usage.
	for i := len(l.edgeUsed); i < len(dst); i++ {
		dst[i] = 0
	}
}

// CostOptions returns graph search options that admit only links with at
// least demand residual bandwidth according to this ledger. Both the
// scalar and bulk residual hooks are set, so compiled cost views can
// export every residual in one call.
func (l *Ledger) CostOptions(demand float64) *graph.CostOptions {
	return &graph.CostOptions{MinCapacity: demand, Residual: l.EdgeResidual, Residuals: l.EdgeResiduals}
}

// capacityEps absorbs float accumulation error in capacity comparisons.
const capacityEps = 1e-9
