package network

import (
	"fmt"
	"maps"

	"dagsfc/internal/graph"
)

// Ledger tracks how much bandwidth of every link and how much processing
// capacity of every VNF instance is already committed. It is the
// "real-time network graph G_1" that Algorithm 1 consults: embedding
// algorithms reserve capacity as they commit sub-solutions, and online
// multi-flow scenarios carry one ledger across many requests.
//
// A Ledger is either a root (dense usage arrays, created by NewLedger) or
// an overlay (created by Overlay): a sparse copy-on-write delta over a base
// ledger. Overlays make speculative embeds O(changes) instead of O(network)
// — the serving layer hands each worker an overlay snapshot rather than a
// full Clone — and can be folded back with Commit or dropped with Discard.
// While an overlay is live its base must not be mutated; the overlay reads
// through to it on every query.
//
// The zero Ledger is not usable; create one with NewLedger.
type Ledger struct {
	net *Network
	// base is nil for root ledgers; overlays read through to it.
	base *Ledger
	// edgeUsed holds absolute committed bandwidth per edge (root only).
	edgeUsed []float64
	// edgeDelta holds the overlay's sparse bandwidth deltas (overlay only).
	edgeDelta map[graph.EdgeID]float64
	// instUsed holds absolute committed capacity on roots and deltas on
	// overlays.
	instUsed map[instKey]float64
	// quar is the active fault quarantine (root only; overlays read through
	// to their root's table). See fault.go for the publication protocol.
	quar quarPointer
}

// NewLedger returns an empty root ledger over net.
func NewLedger(net *Network) *Ledger {
	return &Ledger{
		net:      net,
		edgeUsed: make([]float64, net.G.NumEdges()),
		instUsed: make(map[instKey]float64),
	}
}

// Network returns the network the ledger accounts for.
func (l *Ledger) Network() *Network { return l.net }

// IsOverlay reports whether l is a copy-on-write overlay.
func (l *Ledger) IsOverlay() bool { return l.base != nil }

// OverlayLen reports how many distinct edges and instances the overlay has
// touched (0 for a root ledger) — the cost driver of Snapshot and Commit,
// which the server uses to decide when to rebase.
func (l *Ledger) OverlayLen() int { return len(l.edgeDelta) + len(l.instUsed) }

// Overlay returns a new empty copy-on-write overlay whose reads fall
// through to l. The base must not be mutated while the overlay is in use.
func (l *Ledger) Overlay() *Ledger {
	return &Ledger{
		net:       l.net,
		base:      l,
		edgeDelta: make(map[graph.EdgeID]float64),
		instUsed:  make(map[instKey]float64),
	}
}

// EdgeResidual reports the remaining bandwidth of edge e, net of any
// capacity active faults have quarantined. It can be negative while a
// fault holds capacity that committed flows are still using.
func (l *Ledger) EdgeResidual(e graph.EdgeID) float64 {
	r := l.net.G.Edge(e).Capacity - l.EdgeUsed(e)
	if q := l.quarantineTable(); q != nil {
		r -= q.edge[e]
	}
	return r
}

// EdgeUsed reports the committed bandwidth of edge e.
func (l *Ledger) EdgeUsed(e graph.EdgeID) float64 {
	if l.base != nil {
		return l.base.EdgeUsed(e) + l.edgeDelta[e]
	}
	return l.edgeUsed[e]
}

// InstanceResidual reports the remaining processing capacity of the
// instance of vnf on node, net of any capacity active faults have
// quarantined. Missing instances have zero residual; the dummy VNF is
// infinite (node faults black-hole its links instead).
func (l *Ledger) InstanceResidual(node graph.NodeID, vnf VNFID) float64 {
	inst, ok := l.net.Instance(node, vnf)
	if !ok {
		return 0
	}
	r := inst.Capacity - l.InstanceUsed(node, vnf)
	if q := l.quarantineTable(); q != nil {
		r -= q.inst[instKey{node, vnf}]
	}
	return r
}

// InstanceUsed reports the committed capacity of the instance of vnf on
// node.
func (l *Ledger) InstanceUsed(node graph.NodeID, vnf VNFID) float64 {
	if l.base != nil {
		return l.base.InstanceUsed(node, vnf) + l.instUsed[instKey{node, vnf}]
	}
	return l.instUsed[instKey{node, vnf}]
}

// ReserveEdge commits amount bandwidth on edge e, failing without side
// effects if the residual is insufficient.
func (l *Ledger) ReserveEdge(e graph.EdgeID, amount float64) error {
	if amount < 0 {
		return fmt.Errorf("network: negative reservation %v on edge %d", amount, e)
	}
	if l.EdgeResidual(e) < amount-capacityEps {
		return fmt.Errorf("network: edge %d over capacity: residual %v < demand %v",
			e, l.EdgeResidual(e), amount)
	}
	if l.base != nil {
		l.setEdgeDelta(e, l.edgeDelta[e]+amount)
		return nil
	}
	l.edgeUsed[e] += amount
	return nil
}

// ReleaseEdge returns amount bandwidth to edge e. Total usage never drops
// below zero, on either a root or the combined view of an overlay.
func (l *Ledger) ReleaseEdge(e graph.EdgeID, amount float64) {
	if l.base != nil {
		d := l.edgeDelta[e] - amount
		if l.base.EdgeUsed(e)+d < 0 {
			d = -l.base.EdgeUsed(e)
		}
		l.setEdgeDelta(e, d)
		return
	}
	l.edgeUsed[e] -= amount
	if l.edgeUsed[e] < 0 {
		l.edgeUsed[e] = 0
	}
}

func (l *Ledger) setEdgeDelta(e graph.EdgeID, d float64) {
	if d == 0 {
		delete(l.edgeDelta, e)
		return
	}
	l.edgeDelta[e] = d
}

// ReserveInstance commits amount processing capacity on the instance of
// vnf at node, failing without side effects if insufficient. Reserving the
// dummy VNF is a no-op.
func (l *Ledger) ReserveInstance(node graph.NodeID, vnf VNFID, amount float64) error {
	if vnf == Dummy {
		return nil
	}
	if amount < 0 {
		return fmt.Errorf("network: negative reservation %v on instance (%d,%d)", amount, node, vnf)
	}
	if l.InstanceResidual(node, vnf) < amount-capacityEps {
		return fmt.Errorf("network: instance f(%d) on node %d over capacity: residual %v < demand %v",
			vnf, node, l.InstanceResidual(node, vnf), amount)
	}
	key := instKey{node, vnf}
	if l.base != nil {
		l.setInstDelta(key, l.instUsed[key]+amount)
		return nil
	}
	l.instUsed[key] += amount
	return nil
}

// ReleaseInstance returns amount capacity to the instance of vnf at node.
// Total usage never drops below zero, matching ReleaseEdge.
func (l *Ledger) ReleaseInstance(node graph.NodeID, vnf VNFID, amount float64) {
	if vnf == Dummy {
		return
	}
	key := instKey{node, vnf}
	if l.base != nil {
		d := l.instUsed[key] - amount
		if l.base.InstanceUsed(node, vnf)+d <= 0 {
			d = -l.base.InstanceUsed(node, vnf)
		}
		l.setInstDelta(key, d)
		return
	}
	l.instUsed[key] -= amount
	if l.instUsed[key] <= 0 {
		delete(l.instUsed, key)
	}
}

func (l *Ledger) setInstDelta(key instKey, d float64) {
	if d == 0 {
		delete(l.instUsed, key)
		return
	}
	l.instUsed[key] = d
}

// Commit folds an overlay's deltas into its base ledger. Every positive
// delta is re-validated against the base first — the base may have moved
// since the overlay was taken (a stale-snapshot commit in the server) —
// and on any violation the commit fails without touching the base. After a
// successful commit the overlay is empty and remains usable.
func (l *Ledger) Commit() error {
	if l.base == nil {
		return fmt.Errorf("network: Commit on a root ledger (not an overlay)")
	}
	for e, d := range l.edgeDelta {
		if d > 0 && l.base.EdgeResidual(e) < d-capacityEps {
			return fmt.Errorf("network: commit conflict: edge %d residual %v < delta %v",
				e, l.base.EdgeResidual(e), d)
		}
	}
	for k, d := range l.instUsed {
		if d > 0 && l.base.InstanceResidual(k.node, k.vnf) < d-capacityEps {
			return fmt.Errorf("network: commit conflict: instance f(%d) on node %d residual %v < delta %v",
				k.vnf, k.node, l.base.InstanceResidual(k.node, k.vnf), d)
		}
	}
	for e, d := range l.edgeDelta {
		if d >= 0 {
			// Validated reservation: cannot overflow the base.
			l.base.edgeOrDeltaAdd(e, d)
		} else {
			l.base.ReleaseEdge(e, -d)
		}
	}
	for k, d := range l.instUsed {
		if d >= 0 {
			l.base.instOrDeltaAdd(k, d)
		} else {
			l.base.ReleaseInstance(k.node, k.vnf, -d)
		}
	}
	clear(l.edgeDelta)
	clear(l.instUsed)
	return nil
}

// edgeOrDeltaAdd adds a validated positive amount to the base's usage,
// whether the base is itself a root or an overlay (stacked overlays fold
// one level at a time).
func (l *Ledger) edgeOrDeltaAdd(e graph.EdgeID, d float64) {
	if l.base != nil {
		l.setEdgeDelta(e, l.edgeDelta[e]+d)
		return
	}
	l.edgeUsed[e] += d
}

func (l *Ledger) instOrDeltaAdd(k instKey, d float64) {
	if l.base != nil {
		l.setInstDelta(k, l.instUsed[k]+d)
		return
	}
	l.instUsed[k] += d
	if l.instUsed[k] <= 0 {
		delete(l.instUsed, k)
	}
}

// Discard drops every uncommitted delta; the overlay is empty afterwards
// and remains usable. On a root ledger it is a no-op.
func (l *Ledger) Discard() {
	if l.base == nil {
		return
	}
	clear(l.edgeDelta)
	clear(l.instUsed)
}

// Snapshot returns an independent what-if copy of the ledger's current
// view. For an overlay this is O(overlay deltas): the copy shares the
// (frozen) base and clones only the sparse delta maps — the cheap
// replacement for the per-speculative-embed Clone the server used to pay.
// For a root ledger it is a full Clone.
func (l *Ledger) Snapshot() *Ledger {
	if l.base == nil {
		return l.Clone()
	}
	return &Ledger{
		net:       l.net,
		base:      l.base,
		edgeDelta: maps.Clone(l.edgeDelta),
		instUsed:  maps.Clone(l.instUsed),
	}
}

// Flatten folds the ledger's entire view (base chain plus deltas) into a
// fresh independent root ledger. The server rebases onto a Flatten when an
// overlay's delta map has grown past the point where snapshots stay cheap.
func (l *Ledger) Flatten() *Ledger {
	c := &Ledger{
		net:      l.net,
		edgeUsed: make([]float64, l.net.G.NumEdges()),
		instUsed: make(map[instKey]float64),
	}
	for e := range c.edgeUsed {
		c.edgeUsed[e] = l.EdgeUsed(graph.EdgeID(e))
	}
	// Every instance with nonzero combined usage appears in at least one
	// map of the chain (deltas and absolutes alike), so the union of keys
	// covers the view.
	for cur := l; cur != nil; cur = cur.base {
		for k := range cur.instUsed {
			if _, seen := c.instUsed[k]; seen {
				continue
			}
			if u := l.InstanceUsed(k.node, k.vnf); u > 0 {
				c.instUsed[k] = u
			}
		}
	}
	// The flattened root inherits the active quarantine (the table is
	// immutable, so sharing the pointer is safe); the server's rebase must
	// not lose in-flight faults.
	c.quar.Store(l.quarantineTable())
	return c
}

// Clone returns an independent copy of the ledger (sharing the immutable
// network). Search algorithms use clones for what-if exploration. Cloning
// an overlay flattens it into a root.
func (l *Ledger) Clone() *Ledger {
	if l.base != nil {
		return l.Flatten()
	}
	c := &Ledger{
		net:      l.net,
		edgeUsed: append([]float64(nil), l.edgeUsed...),
		instUsed: maps.Clone(l.instUsed),
	}
	c.quar.Store(l.quar.Load())
	return c
}

// CostOptions returns graph search options that admit only links with at
// least demand residual bandwidth according to this ledger.
func (l *Ledger) CostOptions(demand float64) *graph.CostOptions {
	return &graph.CostOptions{MinCapacity: demand, Residual: l.EdgeResidual}
}

// capacityEps absorbs float accumulation error in capacity comparisons.
const capacityEps = 1e-9
