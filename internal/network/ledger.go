package network

import (
	"fmt"

	"dagsfc/internal/graph"
)

// Ledger tracks how much bandwidth of every link and how much processing
// capacity of every VNF instance is already committed. It is the
// "real-time network graph G_1" that Algorithm 1 consults: embedding
// algorithms reserve capacity as they commit sub-solutions, and online
// multi-flow scenarios carry one ledger across many requests.
//
// The zero Ledger is not usable; create one with NewLedger.
type Ledger struct {
	net      *Network
	edgeUsed []float64
	instUsed map[instKey]float64
}

// NewLedger returns an empty ledger over net.
func NewLedger(net *Network) *Ledger {
	return &Ledger{
		net:      net,
		edgeUsed: make([]float64, net.G.NumEdges()),
		instUsed: make(map[instKey]float64),
	}
}

// Network returns the network the ledger accounts for.
func (l *Ledger) Network() *Network { return l.net }

// EdgeResidual reports the remaining bandwidth of edge e.
func (l *Ledger) EdgeResidual(e graph.EdgeID) float64 {
	return l.net.G.Edge(e).Capacity - l.edgeUsed[e]
}

// EdgeUsed reports the committed bandwidth of edge e.
func (l *Ledger) EdgeUsed(e graph.EdgeID) float64 { return l.edgeUsed[e] }

// InstanceResidual reports the remaining processing capacity of the
// instance of vnf on node. Missing instances have zero residual; the dummy
// VNF is infinite.
func (l *Ledger) InstanceResidual(node graph.NodeID, vnf VNFID) float64 {
	inst, ok := l.net.Instance(node, vnf)
	if !ok {
		return 0
	}
	return inst.Capacity - l.instUsed[instKey{node, vnf}]
}

// InstanceUsed reports the committed capacity of the instance of vnf on
// node.
func (l *Ledger) InstanceUsed(node graph.NodeID, vnf VNFID) float64 {
	return l.instUsed[instKey{node, vnf}]
}

// ReserveEdge commits amount bandwidth on edge e, failing without side
// effects if the residual is insufficient.
func (l *Ledger) ReserveEdge(e graph.EdgeID, amount float64) error {
	if amount < 0 {
		return fmt.Errorf("network: negative reservation %v on edge %d", amount, e)
	}
	if l.EdgeResidual(e) < amount-capacityEps {
		return fmt.Errorf("network: edge %d over capacity: residual %v < demand %v",
			e, l.EdgeResidual(e), amount)
	}
	l.edgeUsed[e] += amount
	return nil
}

// ReleaseEdge returns amount bandwidth to edge e.
func (l *Ledger) ReleaseEdge(e graph.EdgeID, amount float64) {
	l.edgeUsed[e] -= amount
	if l.edgeUsed[e] < 0 {
		l.edgeUsed[e] = 0
	}
}

// ReserveInstance commits amount processing capacity on the instance of
// vnf at node, failing without side effects if insufficient. Reserving the
// dummy VNF is a no-op.
func (l *Ledger) ReserveInstance(node graph.NodeID, vnf VNFID, amount float64) error {
	if vnf == Dummy {
		return nil
	}
	if amount < 0 {
		return fmt.Errorf("network: negative reservation %v on instance (%d,%d)", amount, node, vnf)
	}
	if l.InstanceResidual(node, vnf) < amount-capacityEps {
		return fmt.Errorf("network: instance f(%d) on node %d over capacity: residual %v < demand %v",
			vnf, node, l.InstanceResidual(node, vnf), amount)
	}
	l.instUsed[instKey{node, vnf}] += amount
	return nil
}

// ReleaseInstance returns amount capacity to the instance of vnf at node.
func (l *Ledger) ReleaseInstance(node graph.NodeID, vnf VNFID, amount float64) {
	if vnf == Dummy {
		return
	}
	key := instKey{node, vnf}
	l.instUsed[key] -= amount
	if l.instUsed[key] <= 0 {
		delete(l.instUsed, key)
	}
}

// Clone returns an independent copy of the ledger (sharing the immutable
// network). Search algorithms use clones for what-if exploration.
func (l *Ledger) Clone() *Ledger {
	c := &Ledger{
		net:      l.net,
		edgeUsed: append([]float64(nil), l.edgeUsed...),
		instUsed: make(map[instKey]float64, len(l.instUsed)),
	}
	for k, v := range l.instUsed {
		c.instUsed[k] = v
	}
	return c
}

// CostOptions returns graph search options that admit only links with at
// least demand residual bandwidth according to this ledger.
func (l *Ledger) CostOptions(demand float64) *graph.CostOptions {
	return &graph.CostOptions{MinCapacity: demand, Residual: l.EdgeResidual}
}

// capacityEps absorbs float accumulation error in capacity comparisons.
const capacityEps = 1e-9
