package network

import (
	"math/rand"
	"testing"

	"dagsfc/internal/graph"
)

// benchNet builds a 500-node random network with one instance of every
// regular VNF kind on each node — sized like the paper's simulation
// topologies, so Clone-vs-Snapshot numbers reflect the server's real
// snapshot cost.
func benchNet(b *testing.B) *Network {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	// Capacities are effectively unbounded so long-running commit
	// benchmarks never trip admission failures.
	const nodes, kinds, bigCap = 500, 6, 1e12
	g := graph.New(nodes)
	for v := 1; v < nodes; v++ {
		g.MustAddEdge(graph.NodeID(rng.Intn(v)), graph.NodeID(v), 1+rng.Float64(), bigCap)
	}
	for i := 0; i < 3*nodes; i++ {
		a, c := rng.Intn(nodes), rng.Intn(nodes)
		if a == c {
			continue
		}
		if _, err := g.AddEdge(graph.NodeID(a), graph.NodeID(c), 1+rng.Float64(), bigCap); err != nil {
			b.Fatal(err)
		}
	}
	net := New(g, Catalog{N: kinds})
	for v := 0; v < nodes; v++ {
		for f := VNFID(1); f <= VNFID(kinds); f++ {
			net.MustAddInstance(graph.NodeID(v), f, 1+rng.Float64(), bigCap)
		}
	}
	net.MustAddInstance(0, net.Catalog.Merger(), 1, bigCap)
	return net
}

// seedUsage commits usage on a spread of edges and instances so clones
// and snapshots copy realistic, non-empty state.
func seedUsage(b *testing.B, l *Ledger, touched int) {
	b.Helper()
	rng := rand.New(rand.NewSource(11))
	g := l.Network().G
	for i := 0; i < touched; i++ {
		if err := l.ReserveEdge(graph.EdgeID(rng.Intn(g.NumEdges())), 1); err != nil {
			b.Fatal(err)
		}
		if err := l.ReserveInstance(graph.NodeID(rng.Intn(g.NumNodes())), VNFID(1+rng.Intn(6)), 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLedgerClone is the cost the server used to pay per speculative
// embed: a full dense copy of the network's usage state.
func BenchmarkLedgerClone(b *testing.B) {
	l := NewLedger(benchNet(b))
	seedUsage(b, l, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = l.Clone()
	}
}

// BenchmarkOverlaySnapshot is what it pays now: an O(overlay deltas) copy
// of a live overlay carrying ~40 uncommitted touches over the same base.
func BenchmarkOverlaySnapshot(b *testing.B) {
	base := NewLedger(benchNet(b))
	seedUsage(b, base, 200)
	ov := base.Overlay()
	seedUsage(b, ov, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ov.Snapshot()
	}
}

// BenchmarkOverlayCommit measures folding a request-sized overlay (a few
// dozen touched entries) into its base, including re-validation.
func BenchmarkOverlayCommit(b *testing.B) {
	base := NewLedger(benchNet(b))
	seedUsage(b, base, 200)
	ov := base.Overlay()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		seedUsage(b, ov, 20)
		b.StartTimer()
		if err := ov.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}
