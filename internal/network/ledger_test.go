package network

import (
	"strings"
	"testing"

	"dagsfc/internal/graph"
)

func TestLedgerEdgeReserveRelease(t *testing.T) {
	net := testNet(t)
	l := NewLedger(net)
	if got := l.EdgeResidual(0); got != 10 {
		t.Fatalf("fresh residual = %v, want 10", got)
	}
	if err := l.ReserveEdge(0, 6); err != nil {
		t.Fatal(err)
	}
	if got := l.EdgeResidual(0); got != 4 {
		t.Fatalf("residual after reserve = %v, want 4", got)
	}
	if err := l.ReserveEdge(0, 5); err == nil {
		t.Fatal("over-reservation accepted")
	}
	if got := l.EdgeResidual(0); got != 4 {
		t.Fatal("failed reservation had side effects")
	}
	l.ReleaseEdge(0, 6)
	if got := l.EdgeResidual(0); got != 10 {
		t.Fatalf("residual after release = %v, want 10", got)
	}
	l.ReleaseEdge(0, 99) // over-release clamps at zero usage
	if got := l.EdgeResidual(0); got != 10 {
		t.Fatal("over-release corrupted ledger")
	}
}

func TestLedgerInstanceReserveRelease(t *testing.T) {
	net := testNet(t)
	l := NewLedger(net)
	if got := l.InstanceResidual(0, 1); got != 5 {
		t.Fatalf("residual = %v, want 5", got)
	}
	if err := l.ReserveInstance(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	if err := l.ReserveInstance(0, 1, 0.1); err == nil {
		t.Fatal("exhausted instance accepted more")
	}
	l.ReleaseInstance(0, 1, 5)
	if got := l.InstanceResidual(0, 1); got != 5 {
		t.Fatalf("residual after release = %v", got)
	}
}

func TestLedgerMissingInstanceHasZeroResidual(t *testing.T) {
	net := testNet(t)
	l := NewLedger(net)
	if got := l.InstanceResidual(3, 1); got != 0 {
		t.Fatalf("missing instance residual = %v, want 0", got)
	}
	if err := l.ReserveInstance(3, 1, 1); err == nil {
		t.Fatal("reservation on missing instance accepted")
	}
}

func TestLedgerDummyIsFree(t *testing.T) {
	net := testNet(t)
	l := NewLedger(net)
	for i := 0; i < 100; i++ {
		if err := l.ReserveInstance(0, Dummy, 1000); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLedgerNegativeReservationRejected(t *testing.T) {
	net := testNet(t)
	l := NewLedger(net)
	if err := l.ReserveEdge(0, -1); err == nil {
		t.Fatal("negative edge reservation accepted")
	}
	if err := l.ReserveInstance(0, 1, -1); err == nil {
		t.Fatal("negative instance reservation accepted")
	}
}

func TestLedgerCloneIndependent(t *testing.T) {
	net := testNet(t)
	l := NewLedger(net)
	if err := l.ReserveEdge(0, 3); err != nil {
		t.Fatal(err)
	}
	c := l.Clone()
	if err := c.ReserveEdge(0, 4); err != nil {
		t.Fatal(err)
	}
	if l.EdgeResidual(0) != 7 || c.EdgeResidual(0) != 3 {
		t.Fatalf("ledgers entangled: %v vs %v", l.EdgeResidual(0), c.EdgeResidual(0))
	}
	if err := c.ReserveInstance(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if l.InstanceResidual(0, 1) != 5 {
		t.Fatal("instance usage leaked across clone")
	}
}

func TestLedgerCostOptionsFilters(t *testing.T) {
	net := testNet(t)
	l := NewLedger(net)
	// Saturate edge 0 (0-1). A search demanding 1 unit must avoid it.
	if err := l.ReserveEdge(0, 10); err != nil {
		t.Fatal(err)
	}
	opts := l.CostOptions(1)
	if _, ok := net.G.MinCostPath(0, 1, opts); ok {
		t.Fatal("saturated edge used")
	}
	// Without demand the edge is still admitted.
	if _, ok := net.G.MinCostPath(0, 1, l.CostOptions(0)); !ok {
		t.Fatal("zero-demand search should admit saturated edge")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	net := testNet(t)
	var b strings.Builder
	if err := net.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.G.NumNodes() != net.G.NumNodes() || got.G.NumEdges() != net.G.NumEdges() {
		t.Fatal("topology not preserved")
	}
	if got.NumInstances() != net.NumInstances() || got.Catalog != net.Catalog {
		t.Fatal("deployment not preserved")
	}
	inst, ok := got.Instance(2, 3)
	if !ok || inst.Price != 30 {
		t.Fatalf("instance data lost: %+v ok=%v", inst, ok)
	}
	e, ok := got.G.FindEdge(1, 2)
	if !ok || e.Price != 2 || e.Capacity != 10 {
		t.Fatalf("edge data lost: %+v ok=%v", e, ok)
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"nodes":-3}`)); err == nil {
		t.Fatal("negative node count accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"nodes":2,"vnf_kinds":1,"links":[{"a":0,"b":9,"price":1,"capacity":1}]}`)); err == nil {
		t.Fatal("out-of-range link accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"nodes":2,"vnf_kinds":1,"instances":[{"node":0,"vnf":7,"price":1,"capacity":1}]}`)); err == nil {
		t.Fatal("out-of-catalog instance accepted")
	}
}

// TestEdgeResidualsBitExact pins the bulk-export contract: EdgeResiduals
// must agree with per-edge EdgeResidual bitwise — same overlay-chain
// addition order, same quarantine subtraction — across root ledgers,
// stacked overlays, and active faults, because cost-view compilation
// feeds its output into the exact capacity-floor comparison the scalar
// path uses.
func TestEdgeResidualsBitExact(t *testing.T) {
	net := testNet(t)
	root := NewLedger(net)
	// Awkward float amounts so any reordering of the additions would show.
	if err := root.ReserveEdge(0, 0.1); err != nil {
		t.Fatal(err)
	}
	if err := root.ReserveEdge(1, 3.3); err != nil {
		t.Fatal(err)
	}
	o1 := root.Overlay()
	if err := o1.ReserveEdge(0, 0.2); err != nil {
		t.Fatal(err)
	}
	if err := o1.ReserveEdge(2, 1.0/3); err != nil {
		t.Fatal(err)
	}
	o2 := o1.Overlay()
	if err := o2.ReserveEdge(0, 0.7); err != nil {
		t.Fatal(err)
	}
	if err := root.ApplyFault(Fault{Kind: FaultLinkDegrade, Link: 1, Fraction: 0.3}); err != nil {
		t.Fatal(err)
	}
	check := func(name string, l *Ledger) {
		t.Helper()
		// Deliberately dirty, oversized buffer: reuse must overwrite fully.
		buf := []float64{99, 99, 99, 99, 99}
		got := l.EdgeResiduals(buf)
		if len(got) != net.G.NumEdges() {
			t.Fatalf("%s: len = %d, want %d", name, len(got), net.G.NumEdges())
		}
		for e := 0; e < net.G.NumEdges(); e++ {
			want := l.EdgeResidual(graph.EdgeID(e))
			if got[e] != want {
				t.Fatalf("%s: edge %d residual = %v, want %v", name, e, got[e], want)
			}
		}
	}
	check("root", root)
	check("overlay", o1)
	check("stacked overlay", o2)
	// Undersized buffer grows.
	if got := root.EdgeResiduals(nil); len(got) != net.G.NumEdges() {
		t.Fatalf("nil buffer: len = %d", len(got))
	}
	// The CostOptions wiring exposes the bulk hook.
	if opts := root.CostOptions(1); opts.Residuals == nil {
		t.Fatal("CostOptions did not set the bulk residual hook")
	}
}
