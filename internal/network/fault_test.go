package network

import (
	"math"
	"strings"
	"testing"

	"dagsfc/internal/graph"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestFaultLinkDownRestoreExact(t *testing.T) {
	net := testNet(t)
	l := NewLedger(net)
	if err := l.ReserveEdge(1, 4); err != nil {
		t.Fatal(err)
	}
	before := l.EdgeResidual(1)
	if !almost(before, 6) {
		t.Fatalf("pre-fault residual = %v, want 6", before)
	}

	f := Fault{Kind: FaultLinkDown, Link: 1}
	if err := l.ApplyFault(f); err != nil {
		t.Fatal(err)
	}
	if got := l.EdgeQuarantined(1); !almost(got, 10) {
		t.Fatalf("EdgeQuarantined = %v, want 10", got)
	}
	// Full capacity quarantined while 4 units are committed: residual goes
	// negative rather than clamping, so reservations fail and the deficit
	// is visible.
	if got := l.EdgeResidual(1); !almost(got, -4) {
		t.Fatalf("faulted residual = %v, want -4", got)
	}
	if err := l.ReserveEdge(1, 1); err == nil {
		t.Fatal("reserve on downed link succeeded")
	}
	if !l.FaultsActive() {
		t.Fatal("FaultsActive = false with a live fault")
	}

	if err := l.RestoreFault(f); err != nil {
		t.Fatal(err)
	}
	if got := l.EdgeResidual(1); got != before {
		t.Fatalf("post-restore residual = %v, want exactly %v", got, before)
	}
	if l.FaultsActive() {
		t.Fatal("FaultsActive = true after full restore")
	}
	if err := l.RestoreFault(f); err == nil {
		t.Fatal("unmatched restore succeeded")
	}
}

func TestFaultNodeDown(t *testing.T) {
	net := testNet(t)
	l := NewLedger(net)
	f := Fault{Kind: FaultNodeDown, Node: 2}
	if err := l.ApplyFault(f); err != nil {
		t.Fatal(err)
	}
	if !l.NodeDown(2) || l.NodeDown(1) {
		t.Fatalf("NodeDown(2)=%v NodeDown(1)=%v", l.NodeDown(2), l.NodeDown(1))
	}
	// Node 2's incident links are edges 1 (1-2) and 2 (2-3); both fully out.
	for _, e := range []int{1, 2} {
		if got := l.EdgeResidual(graph.EdgeID(e)); !almost(got, 0) {
			t.Fatalf("edge %d residual = %v, want 0", e, got)
		}
	}
	if got := l.EdgeResidual(0); !almost(got, 10) {
		t.Fatalf("edge 0 residual = %v, want 10 (untouched)", got)
	}
	// Both instances hosted on node 2 (f2 and f3, capacity 5 each) are out.
	if got := l.InstanceResidual(2, 2); !almost(got, 0) {
		t.Fatalf("instance f2@2 residual = %v, want 0", got)
	}
	if got := l.InstanceResidual(2, 3); !almost(got, 0) {
		t.Fatalf("instance f3@2 residual = %v, want 0", got)
	}
	if got := l.InstanceResidual(1, 2); !almost(got, 5) {
		t.Fatalf("instance f2@1 residual = %v, want 5 (untouched)", got)
	}

	// Down twice (e.g. overlapping schedule entries): one restore leaves the
	// node down, the second brings everything back exactly.
	if err := l.ApplyFault(f); err != nil {
		t.Fatal(err)
	}
	if err := l.RestoreFault(f); err != nil {
		t.Fatal(err)
	}
	if !l.NodeDown(2) {
		t.Fatal("node came back up with one of two faults still active")
	}
	if err := l.RestoreFault(f); err != nil {
		t.Fatal(err)
	}
	if l.NodeDown(2) || l.FaultsActive() {
		t.Fatal("quarantine not fully drained after matched restores")
	}
	if got := l.EdgeResidual(1); got != 10 {
		t.Fatalf("edge 1 residual = %v, want exactly 10", got)
	}
	if got := l.InstanceResidual(2, 3); got != 5 {
		t.Fatalf("instance f3@2 residual = %v, want exactly 5", got)
	}
}

func TestFaultLinkDegrade(t *testing.T) {
	net := testNet(t)
	l := NewLedger(net)
	f := Fault{Kind: FaultLinkDegrade, Link: 0, Fraction: 0.5}
	if err := l.ApplyFault(f); err != nil {
		t.Fatal(err)
	}
	if got := l.EdgeResidual(0); !almost(got, 5) {
		t.Fatalf("degraded residual = %v, want 5", got)
	}
	// Reservations within the degraded budget still work.
	if err := l.ReserveEdge(0, 5); err != nil {
		t.Fatalf("reserve within degraded capacity: %v", err)
	}
	if err := l.ReserveEdge(0, 1); err == nil {
		t.Fatal("reserve past degraded capacity succeeded")
	}
	if err := l.RestoreFault(f); err != nil {
		t.Fatal(err)
	}
	if got := l.EdgeResidual(0); got != 5 {
		t.Fatalf("post-restore residual = %v, want exactly 5 (10 cap - 5 used)", got)
	}
}

func TestFaultValidate(t *testing.T) {
	net := testNet(t)
	l := NewLedger(net)
	bad := []Fault{
		{Kind: FaultLinkDown, Link: 99},
		{Kind: FaultLinkDown, Link: -1},
		{Kind: FaultNodeDown, Node: 99},
		{Kind: FaultLinkDegrade, Link: 0, Fraction: 0},
		{Kind: FaultLinkDegrade, Link: 0, Fraction: 1.5},
		{Kind: FaultKind(42)},
	}
	for _, f := range bad {
		if err := l.ApplyFault(f); err == nil {
			t.Fatalf("ApplyFault(%+v) succeeded", f)
		}
	}
	if l.FaultsActive() {
		t.Fatal("rejected faults left quarantine behind")
	}
	if s := (Fault{Kind: FaultLinkDegrade, Link: 7, Fraction: 0.5}).String(); !strings.Contains(s, "link-degrade 7 0.5") {
		t.Fatalf("String() = %q", s)
	}
}

// TestOverlayCommitFailsAcrossFault pins the stale-snapshot semantics the
// server relies on: a speculative overlay taken before a fault must fail
// its re-validating Commit once the fault has quarantined the capacity it
// reserved, and succeed again after the restore.
func TestOverlayCommitFailsAcrossFault(t *testing.T) {
	net := testNet(t)
	base := NewLedger(net)
	ov := base.Overlay()
	if err := ov.ReserveEdge(0, 7); err != nil {
		t.Fatal(err)
	}

	f := Fault{Kind: FaultLinkDown, Link: 0}
	// Applying through the overlay must land on the root.
	if err := ov.ApplyFault(f); err != nil {
		t.Fatal(err)
	}
	if !base.FaultsActive() {
		t.Fatal("fault applied via overlay not visible on root")
	}
	if err := ov.Commit(); err == nil {
		t.Fatal("commit across a fault succeeded")
	}
	if got := base.EdgeUsed(0); got != 0 {
		t.Fatalf("failed commit touched the base: EdgeUsed = %v", got)
	}

	if err := base.RestoreFault(f); err != nil {
		t.Fatal(err)
	}
	if err := ov.Commit(); err != nil {
		t.Fatalf("commit after restore: %v", err)
	}
	if got := base.EdgeUsed(0); !almost(got, 7) {
		t.Fatalf("base EdgeUsed = %v, want 7", got)
	}
}

// TestFaultVisibleThroughSnapshots checks a snapshot taken before the fault
// observes post-fault residuals immediately (it shares the root), while a
// Clone taken before the fault keeps the pre-fault view (independent root).
func TestFaultVisibleThroughSnapshots(t *testing.T) {
	net := testNet(t)
	base := NewLedger(net)
	live := base.Overlay()
	snap := live.Snapshot()
	clone := base.Clone()

	f := Fault{Kind: FaultLinkDegrade, Link: 2, Fraction: 1}
	if err := base.ApplyFault(f); err != nil {
		t.Fatal(err)
	}
	if got := snap.EdgeResidual(2); !almost(got, 0) {
		t.Fatalf("snapshot residual = %v, want 0 (shares faulted root)", got)
	}
	if got := clone.EdgeResidual(2); !almost(got, 10) {
		t.Fatalf("clone residual = %v, want 10 (independent root)", got)
	}

	// A rebase (Flatten) while the fault is live must carry the quarantine.
	flat := live.Flatten()
	if got := flat.EdgeResidual(2); !almost(got, 0) {
		t.Fatalf("flattened residual = %v, want 0", got)
	}
	if !flat.FaultsActive() {
		t.Fatal("Flatten dropped the active quarantine")
	}
	// Restoring on the original root must not disturb the flattened copy,
	// which captured the immutable table at flatten time.
	if err := base.RestoreFault(f); err != nil {
		t.Fatal(err)
	}
	if !flat.FaultsActive() {
		t.Fatal("restore on source root leaked into flattened ledger")
	}
	if err := flat.RestoreFault(f); err != nil {
		t.Fatal(err)
	}
	if flat.FaultsActive() {
		t.Fatal("flattened ledger quarantine not drained")
	}
}
