package network

import (
	"math"
	"math/rand"
	"testing"

	"dagsfc/internal/graph"
)

// ledgersAgree fails unless a and b report identical usage and residuals
// for every edge and every deployed instance.
func ledgersAgree(t *testing.T, a, b *Ledger, context string) {
	t.Helper()
	g := a.net.G
	for e := 0; e < g.NumEdges(); e++ {
		id := graph.EdgeID(e)
		if math.Abs(a.EdgeUsed(id)-b.EdgeUsed(id)) > 1e-9 {
			t.Fatalf("%s: edge %d used %v vs %v", context, e, a.EdgeUsed(id), b.EdgeUsed(id))
		}
		if math.Abs(a.EdgeResidual(id)-b.EdgeResidual(id)) > 1e-9 {
			t.Fatalf("%s: edge %d residual %v vs %v", context, e, a.EdgeResidual(id), b.EdgeResidual(id))
		}
	}
	for v := 0; v < g.NumNodes(); v++ {
		for f := VNFID(0); f <= a.net.Catalog.Merger(); f++ {
			au := a.InstanceUsed(graph.NodeID(v), f)
			bu := b.InstanceUsed(graph.NodeID(v), f)
			if math.Abs(au-bu) > 1e-9 {
				t.Fatalf("%s: instance f(%d)@%d used %v vs %v", context, f, v, au, bu)
			}
			ar := a.InstanceResidual(graph.NodeID(v), f)
			br := b.InstanceResidual(graph.NodeID(v), f)
			if ar != br && math.Abs(ar-br) > 1e-9 { // Inf == Inf for the dummy
				t.Fatalf("%s: instance f(%d)@%d residual %v vs %v", context, f, v, ar, br)
			}
		}
	}
}

// TestOverlayMatchesCloneProperty drives an overlay and a Clone of the same
// base through a long random interleaving of reserve/release operations and
// checks their views never diverge — the overlay must be observably a
// Clone, just cheaper.
func TestOverlayMatchesCloneProperty(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		net := testNet(t)
		base := NewLedger(net)
		// Pre-commit some base usage so overlays start from a non-trivial view.
		if err := base.ReserveEdge(0, 3); err != nil {
			t.Fatal(err)
		}
		if err := base.ReserveInstance(1, 2, 2); err != nil {
			t.Fatal(err)
		}

		overlay := base.Overlay()
		clone := base.Clone()
		// Fault events are mirrored onto both roots (the overlay's base and
		// the independent clone); quarantine must keep the views in lockstep
		// exactly like reservations do.
		var live []Fault
		for step := 0; step < 400; step++ {
			e := graph.EdgeID(rng.Intn(net.G.NumEdges()))
			node := graph.NodeID(rng.Intn(net.G.NumNodes()))
			f := VNFID(rng.Intn(int(net.Catalog.Merger()) + 1))
			amt := float64(rng.Intn(40)) / 4
			switch rng.Intn(6) {
			case 0:
				oe, ce := overlay.ReserveEdge(e, amt), clone.ReserveEdge(e, amt)
				if (oe == nil) != (ce == nil) {
					t.Fatalf("seed=%d step=%d: ReserveEdge(%d,%v) overlay err=%v clone err=%v", seed, step, e, amt, oe, ce)
				}
			case 1:
				overlay.ReleaseEdge(e, amt)
				clone.ReleaseEdge(e, amt)
			case 2:
				oe, ce := overlay.ReserveInstance(node, f, amt), clone.ReserveInstance(node, f, amt)
				if (oe == nil) != (ce == nil) {
					t.Fatalf("seed=%d step=%d: ReserveInstance(%d,%d,%v) overlay err=%v clone err=%v", seed, step, node, f, amt, oe, ce)
				}
			case 3:
				overlay.ReleaseInstance(node, f, amt)
				clone.ReleaseInstance(node, f, amt)
			case 4:
				var flt Fault
				switch rng.Intn(3) {
				case 0:
					flt = Fault{Kind: FaultLinkDown, Link: e}
				case 1:
					flt = Fault{Kind: FaultNodeDown, Node: node}
				case 2:
					flt = Fault{Kind: FaultLinkDegrade, Link: e, Fraction: float64(1+rng.Intn(4)) / 4}
				}
				oe, ce := overlay.ApplyFault(flt), clone.ApplyFault(flt)
				if (oe == nil) != (ce == nil) {
					t.Fatalf("seed=%d step=%d: ApplyFault(%v) overlay err=%v clone err=%v", seed, step, flt, oe, ce)
				}
				if oe == nil {
					live = append(live, flt)
				}
			case 5:
				if len(live) == 0 {
					continue
				}
				i := rng.Intn(len(live))
				flt := live[i]
				live = append(live[:i], live[i+1:]...)
				if err := overlay.RestoreFault(flt); err != nil {
					t.Fatalf("seed=%d step=%d: overlay RestoreFault(%v): %v", seed, step, flt, err)
				}
				if err := clone.RestoreFault(flt); err != nil {
					t.Fatalf("seed=%d step=%d: clone RestoreFault(%v): %v", seed, step, flt, err)
				}
			}
			ledgersAgree(t, overlay, clone, "during interleaving")
		}
		// Drain the outstanding faults so the commit phase below exercises
		// the original conflict-free path, and check restores are exact.
		for _, flt := range live {
			if err := overlay.RestoreFault(flt); err != nil {
				t.Fatalf("seed=%d: drain overlay RestoreFault(%v): %v", seed, flt, err)
			}
			if err := clone.RestoreFault(flt); err != nil {
				t.Fatalf("seed=%d: drain clone RestoreFault(%v): %v", seed, flt, err)
			}
		}
		if overlay.FaultsActive() || clone.FaultsActive() {
			t.Fatalf("seed=%d: quarantine not drained after restoring every live fault", seed)
		}
		ledgersAgree(t, overlay, clone, "after fault drain")

		// Snapshot must be an independent copy of the current view.
		snap := overlay.Snapshot()
		ledgersAgree(t, snap, clone, "snapshot")
		snap.ReleaseEdge(0, 100)
		ledgersAgree(t, overlay, clone, "after mutating snapshot")

		// Flatten must preserve the view as a root ledger.
		flat := overlay.Flatten()
		if flat.IsOverlay() {
			t.Fatal("Flatten returned an overlay")
		}
		ledgersAgree(t, flat, clone, "flatten")

		// Commit folds the deltas into the base: the base must now agree
		// with the clone, and the overlay (reading through) too.
		if err := overlay.Commit(); err != nil {
			t.Fatalf("seed=%d: commit: %v", seed, err)
		}
		ledgersAgree(t, base, clone, "base after commit")
		ledgersAgree(t, overlay, clone, "overlay after commit")
		if overlay.OverlayLen() != 0 {
			t.Fatalf("overlay not empty after commit: %d entries", overlay.OverlayLen())
		}
	}
}

func TestOverlayDiscard(t *testing.T) {
	net := testNet(t)
	base := NewLedger(net)
	if err := base.ReserveEdge(1, 4); err != nil {
		t.Fatal(err)
	}
	ov := base.Overlay()
	if err := ov.ReserveEdge(1, 5); err != nil {
		t.Fatal(err)
	}
	if err := ov.ReserveInstance(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	ov.Discard()
	if ov.OverlayLen() != 0 {
		t.Fatalf("OverlayLen after discard = %d", ov.OverlayLen())
	}
	ledgersAgree(t, ov, base, "after discard")
	// The overlay remains usable after a discard.
	if err := ov.ReserveEdge(1, 6); err != nil {
		t.Fatal(err)
	}
	if got := ov.EdgeUsed(1); math.Abs(got-10) > 1e-9 {
		t.Fatalf("EdgeUsed after re-reserve = %v, want 10", got)
	}
	if got := base.EdgeUsed(1); math.Abs(got-4) > 1e-9 {
		t.Fatalf("base EdgeUsed = %v, want 4 (must not see overlay)", got)
	}
}

// TestOverlayCommitConflict takes two overlays of one base, commits the
// first, and checks the second's now-infeasible reservation is rejected at
// commit time without corrupting the base — the server's stale-snapshot
// scenario.
func TestOverlayCommitConflict(t *testing.T) {
	net := testNet(t)
	base := NewLedger(net)
	a := base.Overlay()
	b := base.Overlay()
	if err := a.ReserveEdge(0, 7); err != nil {
		t.Fatal(err)
	}
	if err := b.ReserveEdge(0, 7); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatalf("first commit: %v", err)
	}
	if err := b.Commit(); err == nil {
		t.Fatal("second commit of conflicting reservation succeeded")
	}
	if got := base.EdgeUsed(0); math.Abs(got-7) > 1e-9 {
		t.Fatalf("base EdgeUsed = %v after rejected commit, want 7", got)
	}
	if b.OverlayLen() == 0 {
		t.Fatal("rejected overlay lost its deltas")
	}
}

// TestOverlayCommitObservesRelease interleaves a base-side release between
// an overlay's reservation and its commit: the commit's re-validation must
// see the freed capacity (admitting a reservation that was infeasible at
// snapshot time), and a negative overlay delta must fold as a release.
func TestOverlayCommitObservesRelease(t *testing.T) {
	net := testNet(t)
	base := NewLedger(net)
	if err := base.ReserveEdge(0, 8); err != nil {
		t.Fatal(err)
	}
	ov := base.Overlay()
	// Infeasible right now (residual 2 < 7): the overlay can't even book it.
	if err := ov.ReserveEdge(0, 7); err == nil {
		t.Fatal("overlay reserve beyond residual succeeded")
	}
	// Book the 2 that fit, then the base releases 6 before the commit.
	if err := ov.ReserveEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := ov.ReserveEdge(0, 5); err == nil {
		t.Fatal("second overlay reserve should still exceed the stale residual")
	}
	base.ReleaseEdge(0, 6)
	if err := ov.Commit(); err != nil {
		t.Fatalf("commit after base release: %v", err)
	}
	if got := base.EdgeUsed(0); math.Abs(got-4) > 1e-9 {
		t.Fatalf("base EdgeUsed = %v, want 4 (8 - 6 + 2)", got)
	}

	// A release recorded in the overlay folds into the base on commit.
	ov2 := base.Overlay()
	ov2.ReleaseEdge(0, 3)
	if err := ov2.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := base.EdgeUsed(0); math.Abs(got-1) > 1e-9 {
		t.Fatalf("base EdgeUsed = %v after negative-delta commit, want 1", got)
	}
}

func TestCommitOnRootFails(t *testing.T) {
	base := NewLedger(testNet(t))
	if err := base.Commit(); err == nil {
		t.Fatal("Commit on root ledger succeeded")
	}
	base.Discard() // must be a harmless no-op
	if base.IsOverlay() {
		t.Fatal("root ledger claims to be an overlay")
	}
}

// TestStackedOverlayCommit folds a second-level overlay into a first-level
// one and that into the root.
func TestStackedOverlayCommit(t *testing.T) {
	net := testNet(t)
	base := NewLedger(net)
	mid := base.Overlay()
	top := mid.Overlay()
	if err := top.ReserveEdge(2, 4); err != nil {
		t.Fatal(err)
	}
	if err := top.ReserveInstance(2, 3, 2); err != nil {
		t.Fatal(err)
	}
	if err := top.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := mid.EdgeUsed(2); math.Abs(got-4) > 1e-9 {
		t.Fatalf("mid EdgeUsed = %v, want 4", got)
	}
	if got := base.EdgeUsed(2); got != 0 {
		t.Fatalf("base EdgeUsed = %v before mid commit, want 0", got)
	}
	if err := mid.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := base.EdgeUsed(2); math.Abs(got-4) > 1e-9 {
		t.Fatalf("base EdgeUsed = %v, want 4", got)
	}
	if got := base.InstanceUsed(2, 3); math.Abs(got-2) > 1e-9 {
		t.Fatalf("base InstanceUsed = %v, want 2", got)
	}
}
