package network

import (
	"testing"

	"dagsfc/internal/graph"
)

func testNet(t *testing.T) *Network {
	t.Helper()
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1, 10)
	g.MustAddEdge(1, 2, 2, 10)
	g.MustAddEdge(2, 3, 3, 10)
	net := New(g, Catalog{N: 3})
	net.MustAddInstance(0, 1, 10, 5)
	net.MustAddInstance(1, 2, 20, 5)
	net.MustAddInstance(2, 2, 15, 5)
	net.MustAddInstance(2, 3, 30, 5)
	net.MustAddInstance(3, net.Catalog.Merger(), 1, 5)
	return net
}

func TestCatalog(t *testing.T) {
	c := Catalog{N: 3}
	if c.Merger() != 4 {
		t.Fatalf("Merger = %d, want 4", c.Merger())
	}
	if !c.IsRegular(1) || !c.IsRegular(3) || c.IsRegular(0) || c.IsRegular(4) {
		t.Fatal("IsRegular boundaries wrong")
	}
	if !c.Valid(0) || !c.Valid(4) || c.Valid(5) || c.Valid(-1) {
		t.Fatal("Valid boundaries wrong")
	}
	regs := c.Regulars()
	if len(regs) != 3 || regs[0] != 1 || regs[2] != 3 {
		t.Fatalf("Regulars = %v", regs)
	}
}

func TestAddInstanceValidation(t *testing.T) {
	net := testNet(t)
	if err := net.AddInstance(0, 1, 5, 5); err == nil {
		t.Fatal("duplicate instance accepted")
	}
	if err := net.AddInstance(0, Dummy, 5, 5); err == nil {
		t.Fatal("dummy deployment accepted")
	}
	if err := net.AddInstance(0, 9, 5, 5); err == nil {
		t.Fatal("out-of-catalog VNF accepted")
	}
	if err := net.AddInstance(99, 1, 5, 5); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if err := net.AddInstance(1, 1, -5, 5); err == nil {
		t.Fatal("negative price accepted")
	}
}

func TestInstanceLookup(t *testing.T) {
	net := testNet(t)
	inst, ok := net.Instance(2, 2)
	if !ok || inst.Price != 15 || inst.Capacity != 5 {
		t.Fatalf("Instance(2,2) = %+v ok=%v", inst, ok)
	}
	if _, ok := net.Instance(3, 1); ok {
		t.Fatal("phantom instance found")
	}
}

func TestDummyInstanceEverywhere(t *testing.T) {
	net := testNet(t)
	for v := 0; v < 4; v++ {
		inst, ok := net.Instance(graph.NodeID(v), Dummy)
		if !ok || inst.Price != 0 {
			t.Fatalf("dummy at node %d = %+v ok=%v", v, inst, ok)
		}
	}
	if _, ok := net.Instance(-1, Dummy); ok {
		t.Fatal("dummy on invalid node")
	}
}

func TestNodesWithAndVNFsAt(t *testing.T) {
	net := testNet(t)
	v2 := net.NodesWith(2)
	if len(v2) != 2 || v2[0] != 1 || v2[1] != 2 {
		t.Fatalf("V_2 = %v", v2)
	}
	if len(net.NodesWith(1)) != 1 {
		t.Fatalf("V_1 = %v", net.NodesWith(1))
	}
	fv := net.VNFsAt(2)
	if len(fv) != 2 || fv[0] != 2 || fv[1] != 3 {
		t.Fatalf("F_2 = %v", fv)
	}
	if len(net.VNFsAt(3)) != 1 {
		t.Fatalf("F_3 = %v", net.VNFsAt(3))
	}
}

func TestAvgPrices(t *testing.T) {
	net := testNet(t)
	// Regular instances priced 10,20,15,30 -> mean 18.75 (merger excluded).
	if got := net.AvgVNFPrice(); got != 18.75 {
		t.Fatalf("AvgVNFPrice = %v, want 18.75", got)
	}
	if got := net.AvgLinkPrice(); got != 2 {
		t.Fatalf("AvgLinkPrice = %v, want 2", got)
	}
}

func TestNetworkCloneIsDeep(t *testing.T) {
	net := testNet(t)
	c := net.Clone()
	c.MustAddInstance(3, 1, 7, 7)
	if net.HasVNF(3, 1) {
		t.Fatal("clone mutation leaked")
	}
	if !c.HasVNF(3, 1) || c.NumInstances() != net.NumInstances()+1 {
		t.Fatal("clone missing its own instance")
	}
	c.G.MustAddEdge(0, 3, 1, 1)
	if net.G.NumEdges() == c.G.NumEdges() {
		t.Fatal("graph shared between clone and original")
	}
}
