package network

import (
	"fmt"
	"sync/atomic"

	"dagsfc/internal/graph"
)

// This file implements the survivability layer's fault model on the
// capacity ledger. A fault takes substrate capacity out of service by
// QUARANTINING it — the capacity is subtracted from every residual view
// but never from the network definition — so restoring the fault returns
// the ledger to exactly its pre-fault accounting (float-exact, not merely
// approximate: apply and restore add and subtract the same amounts,
// recomputed from the immutable network).
//
// Quarantine lives on the ROOT ledger of an overlay chain, published as an
// immutable table behind an atomic pointer. Overlays and snapshots read
// through to it, which gives faults the semantics the serving layer needs:
//
//   - a speculative embed running on a snapshot taken BEFORE the fault
//     sees the post-fault residuals the moment the fault is applied, and
//     its Commit re-validates against them — the stale-snapshot semantics
//     of the copy-on-write ledger extend to faults for free;
//   - readers never lock: ApplyFault/RestoreFault build a fresh table and
//     swap the pointer, so a search iterating residuals mid-fault observes
//     either the old view or the new one, never a half-applied fault.
//
// Mutations (ApplyFault/RestoreFault) must be serialized by the caller —
// the server applies them under its state mutex, the offline harnesses are
// single-threaded.

// FaultKind discriminates the substrate fault classes the injector can
// replay.
type FaultKind int

const (
	// FaultLinkDown quarantines a link's entire bandwidth.
	FaultLinkDown FaultKind = iota
	// FaultNodeDown quarantines every incident link's bandwidth and every
	// VNF instance hosted on the node.
	FaultNodeDown
	// FaultLinkDegrade quarantines a fraction of a link's bandwidth — a
	// brown-out rather than a black-out.
	FaultLinkDegrade
	// FaultEdgeDown is a hard link failure: the edge's residual is pinned
	// to exactly zero for the fault's duration, independent of committed
	// usage. Unlike FaultLinkDown (which quarantines the capacity amount
	// and can leave a negative residual under over-commitment), the pin is
	// a count, so apply/restore is trivially float-exact.
	FaultEdgeDown
)

// String returns the schedule-syntax name of the kind.
func (k FaultKind) String() string {
	switch k {
	case FaultLinkDown:
		return "link-down"
	case FaultNodeDown:
		return "node-down"
	case FaultLinkDegrade:
		return "link-degrade"
	case FaultEdgeDown:
		return "edge-down"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Fault is one substrate fault: the element it hits and, for degradation,
// how much of the capacity it takes.
type Fault struct {
	Kind FaultKind
	// Link is the target of FaultLinkDown, FaultLinkDegrade and
	// FaultEdgeDown.
	Link graph.EdgeID
	// Node is the target of FaultNodeDown.
	Node graph.NodeID
	// Fraction is the share of the link's bandwidth a FaultLinkDegrade
	// quarantines, in (0, 1].
	Fraction float64
}

// Validate reports the first structural problem with the fault against net.
func (f Fault) Validate(net *Network) error {
	switch f.Kind {
	case FaultLinkDown, FaultEdgeDown:
		if f.Link < 0 || int(f.Link) >= net.G.NumEdges() {
			return fmt.Errorf("network: fault link %d out of range [0,%d)", f.Link, net.G.NumEdges())
		}
	case FaultNodeDown:
		if f.Node < 0 || int(f.Node) >= net.G.NumNodes() {
			return fmt.Errorf("network: fault node %d out of range [0,%d)", f.Node, net.G.NumNodes())
		}
	case FaultLinkDegrade:
		if f.Link < 0 || int(f.Link) >= net.G.NumEdges() {
			return fmt.Errorf("network: fault link %d out of range [0,%d)", f.Link, net.G.NumEdges())
		}
		if f.Fraction <= 0 || f.Fraction > 1 {
			return fmt.Errorf("network: degrade fraction %v outside (0,1]", f.Fraction)
		}
	default:
		return fmt.Errorf("network: unknown fault kind %d", int(f.Kind))
	}
	return nil
}

// String renders the fault in the schedule syntax, e.g. "link-down 3" or
// "link-degrade 7 0.5".
func (f Fault) String() string {
	switch f.Kind {
	case FaultLinkDown:
		return fmt.Sprintf("link-down %d", f.Link)
	case FaultNodeDown:
		return fmt.Sprintf("node-down %d", f.Node)
	case FaultLinkDegrade:
		return fmt.Sprintf("link-degrade %d %g", f.Link, f.Fraction)
	case FaultEdgeDown:
		return fmt.Sprintf("edge-down %d", f.Link)
	}
	return fmt.Sprintf("fault(kind=%d)", int(f.Kind))
}

// quarTable is the published quarantine view: how much capacity each edge
// and instance currently has out of service, plus the down-count per node
// and the hard-failure down-count per edge. Tables are immutable after
// publication; mutations copy-and-swap.
type quarTable struct {
	edge map[graph.EdgeID]float64
	inst map[instKey]float64
	node map[graph.NodeID]int
	// down counts active FaultEdgeDown faults per edge. Any positive count
	// pins the edge's residual to exactly zero (see Ledger.EdgeResidual).
	down map[graph.EdgeID]int
}

func (q *quarTable) empty() bool {
	return len(q.edge) == 0 && len(q.inst) == 0 && len(q.node) == 0 && len(q.down) == 0
}

// edgePinned reports whether the residual of edge (with endpoints a, b) is
// hard-pinned to zero: the edge itself is down, or either endpoint node is.
func (q *quarTable) edgePinned(e graph.EdgeID, a, b graph.NodeID) bool {
	return q.down[e] > 0 || q.node[a] > 0 || q.node[b] > 0
}

func cloneQuar(q *quarTable) *quarTable {
	c := &quarTable{
		edge: make(map[graph.EdgeID]float64),
		inst: make(map[instKey]float64),
		node: make(map[graph.NodeID]int),
		down: make(map[graph.EdgeID]int),
	}
	if q != nil {
		for k, v := range q.edge {
			c.edge[k] = v
		}
		for k, v := range q.inst {
			c.inst[k] = v
		}
		for k, v := range q.node {
			c.node[k] = v
		}
		for k, v := range q.down {
			c.down[k] = v
		}
	}
	return c
}

// addEdge adjusts an edge's quarantined amount, failing if the adjustment
// would drive it negative (a restore without a matching apply).
func (q *quarTable) addEdge(e graph.EdgeID, amt float64) error {
	v := q.edge[e] + amt
	if v < -capacityEps {
		return fmt.Errorf("network: edge %d quarantine would go negative (%v): restore without matching apply", e, v)
	}
	if v <= capacityEps {
		delete(q.edge, e)
		return nil
	}
	q.edge[e] = v
	return nil
}

func (q *quarTable) addInst(k instKey, amt float64) error {
	v := q.inst[k] + amt
	if v < -capacityEps {
		return fmt.Errorf("network: instance f(%d) on node %d quarantine would go negative (%v): restore without matching apply",
			k.vnf, k.node, v)
	}
	if v <= capacityEps {
		delete(q.inst, k)
		return nil
	}
	q.inst[k] = v
	return nil
}

// rootLedger walks the overlay chain to its root (itself for a root
// ledger). Quarantine state lives only there.
func (l *Ledger) rootLedger() *Ledger {
	r := l
	for r.base != nil {
		r = r.base
	}
	return r
}

func (l *Ledger) quarantineTable() *quarTable {
	return l.rootLedger().quar.Load()
}

// ApplyFault quarantines the capacity f takes out of service. Called on an
// overlay, it applies to the overlay chain's root, so every snapshot and
// overlay sharing that root observes the fault immediately. Concurrent
// readers are safe; concurrent mutators are not — serialize Apply/Restore.
func (l *Ledger) ApplyFault(f Fault) error {
	return l.adjustFault(f, +1)
}

// RestoreFault returns f's quarantined capacity to service. It must pair
// with an earlier ApplyFault of the same fault value; an unmatched restore
// fails without changing anything. After every applied fault is restored,
// residuals are float-exactly what they were before the faults.
func (l *Ledger) RestoreFault(f Fault) error {
	return l.adjustFault(f, -1)
}

func (l *Ledger) adjustFault(f Fault, sign float64) error {
	if err := f.Validate(l.net); err != nil {
		return err
	}
	root := l.rootLedger()
	q := cloneQuar(root.quar.Load())
	switch f.Kind {
	case FaultLinkDown:
		if err := q.addEdge(f.Link, sign*l.net.G.Edge(f.Link).Capacity); err != nil {
			return err
		}
	case FaultLinkDegrade:
		if err := q.addEdge(f.Link, sign*f.Fraction*l.net.G.Edge(f.Link).Capacity); err != nil {
			return err
		}
	case FaultNodeDown:
		if n := q.node[f.Node] + int(sign); n < 0 {
			return fmt.Errorf("network: node %d down-count would go negative: restore without matching apply", f.Node)
		} else if n == 0 {
			delete(q.node, f.Node)
		} else {
			q.node[f.Node] = n
		}
		// Each incident edge appears exactly once in the node's adjacency
		// list (self loops are impossible), so apply/restore are symmetric.
		for _, arc := range l.net.G.Neighbors(f.Node) {
			if err := q.addEdge(arc.Edge, sign*l.net.G.Edge(arc.Edge).Capacity); err != nil {
				return err
			}
		}
		for _, vnf := range l.net.VNFsAt(f.Node) {
			inst, _ := l.net.Instance(f.Node, vnf)
			if err := q.addInst(instKey{f.Node, vnf}, sign*inst.Capacity); err != nil {
				return err
			}
		}
	case FaultEdgeDown:
		// A pure pin: no capacity amount moves, only a count, so restore is
		// float-exact by construction.
		if n := q.down[f.Link] + int(sign); n < 0 {
			return fmt.Errorf("network: edge %d down-count would go negative: restore without matching apply", f.Link)
		} else if n == 0 {
			delete(q.down, f.Link)
		} else {
			q.down[f.Link] = n
		}
	}
	if q.empty() {
		root.quar.Store(nil)
	} else {
		root.quar.Store(q)
	}
	// A quarantine change is visible to every ledger in the family at once
	// (they all read through the root's pointer), so it invalidates every
	// pinned view epoch via the family fault counter — a generation count,
	// not a pointer compare, so apply-then-restore (which stores nil again)
	// still invalidates. The state counter moves too, keeping the epoch
	// source monotone with faults like with any other mutation.
	root.ep.fault.Add(1)
	root.ep.state.Add(1)
	return nil
}

// EdgeQuarantined reports how much of edge e's bandwidth active faults
// have taken out of service.
func (l *Ledger) EdgeQuarantined(e graph.EdgeID) float64 {
	if q := l.quarantineTable(); q != nil {
		return q.edge[e]
	}
	return 0
}

// InstanceQuarantined reports how much of the instance's processing
// capacity active faults have taken out of service.
func (l *Ledger) InstanceQuarantined(node graph.NodeID, vnf VNFID) float64 {
	if q := l.quarantineTable(); q != nil {
		return q.inst[instKey{node, vnf}]
	}
	return 0
}

// EdgeDown reports whether edge e's residual is currently hard-pinned to
// zero — by an active edge-down fault on e itself, or by a node-down fault
// on either of its endpoints.
func (l *Ledger) EdgeDown(e graph.EdgeID) bool {
	if q := l.quarantineTable(); q != nil {
		ed := l.net.G.Edge(e)
		return q.edgePinned(e, ed.A, ed.B)
	}
	return false
}

// NodeDown reports whether v is currently failed by at least one active
// node fault.
func (l *Ledger) NodeDown(v graph.NodeID) bool {
	if q := l.quarantineTable(); q != nil {
		return q.node[v] > 0
	}
	return false
}

// FaultsActive reports whether any quarantine is in effect.
func (l *Ledger) FaultsActive() bool {
	q := l.quarantineTable()
	return q != nil && !q.empty()
}

// quarPointer is a tiny alias so ledger.go can declare the field without
// importing sync/atomic twice; see Ledger.quar.
type quarPointer = atomic.Pointer[quarTable]
