package sfcgen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dagsfc/internal/network"
)

func TestGenerateStructureSize5(t *testing.T) {
	s := MustGenerate(Default(10), rand.New(rand.NewSource(1)))
	if s.Size() != 5 {
		t.Fatalf("Size = %d, want 5", s.Size())
	}
	if s.Omega() != 2 || s.Layers[0].Width() != 3 || s.Layers[1].Width() != 2 {
		t.Fatalf("structure = %v, want [3][2]", s)
	}
}

func TestGenerateStructurePerSize(t *testing.T) {
	widths := map[int][]int{
		1: {1},
		2: {2},
		3: {3},
		4: {3, 1},
		6: {3, 3},
		7: {3, 3, 1},
		9: {3, 3, 3},
	}
	for size, want := range widths {
		cfg := Config{Size: size, LayerWidth: 3, VNFKinds: 12}
		s := MustGenerate(cfg, rand.New(rand.NewSource(2)))
		if s.Omega() != len(want) {
			t.Fatalf("size %d: %d layers, want %d", size, s.Omega(), len(want))
		}
		for i, w := range want {
			if s.Layers[i].Width() != w {
				t.Fatalf("size %d: layer %d width %d, want %d", size, i, s.Layers[i].Width(), w)
			}
		}
	}
}

func TestGenerateDistinctCategories(t *testing.T) {
	cfg := Config{Size: 9, LayerWidth: 3, VNFKinds: 9}
	s := MustGenerate(cfg, rand.New(rand.NewSource(3)))
	seen := map[network.VNFID]bool{}
	for _, f := range s.Sequence() {
		if seen[f] {
			t.Fatalf("category %d repeated", f)
		}
		seen[f] = true
	}
}

func TestGenerateValidAgainstCatalog(t *testing.T) {
	f := func(seed int64, szRaw, kindsRaw uint8) bool {
		size := int(szRaw%9) + 1
		kinds := size + int(kindsRaw%10)
		cfg := Config{Size: size, LayerWidth: 3, VNFKinds: kinds}
		s := MustGenerate(cfg, rand.New(rand.NewSource(seed)))
		return s.Validate(network.Catalog{N: kinds}) == nil && s.Size() == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateFreshVNFSetsPerTrial(t *testing.T) {
	// Two draws from one stream should (overwhelmingly) differ in their
	// category sets while sharing the structure.
	rng := rand.New(rand.NewSource(4))
	cfg := Config{Size: 5, LayerWidth: 3, VNFKinds: 40}
	a := MustGenerate(cfg, rng)
	b := MustGenerate(cfg, rng)
	if a.Omega() != b.Omega() {
		t.Fatal("structure changed between draws")
	}
	same := true
	as, bs := a.Sequence(), b.Sequence()
	for i := range as {
		if as[i] != bs[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two draws produced identical category sequences (40 kinds, size 5)")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []Config{
		{Size: 0, LayerWidth: 3, VNFKinds: 5},
		{Size: 3, LayerWidth: 0, VNFKinds: 5},
		{Size: 6, LayerWidth: 3, VNFKinds: 5}, // not enough kinds
	}
	for i, cfg := range cases {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("case %d validated: %+v", i, cfg)
		}
		if _, err := Generate(cfg, rand.New(rand.NewSource(1))); err == nil {
			t.Fatalf("case %d generated: %+v", i, cfg)
		}
	}
}

func TestMustGeneratePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGenerate should panic")
		}
	}()
	MustGenerate(Config{}, rand.New(rand.NewSource(1)))
}
