// Package sfcgen implements the paper's random SFC generator (§5.1): it
// produces DAG-SFCs "by a specific rule in which every three VNFs can be
// assigned in the same layer", using a fresh random VNF set per SFC so that
// repeated trials share the structure but not the categories.
package sfcgen

import (
	"fmt"
	"math/rand"

	"dagsfc/internal/network"
	"dagsfc/internal/sfc"
)

// Config selects the SFC distribution.
type Config struct {
	// Size is the number of VNFs in the SFC (the paper's "SFC size").
	Size int
	// LayerWidth is the maximum parallel VNF set size; the paper's
	// generator uses 3.
	LayerWidth int
	// VNFKinds is the number of regular categories to draw from; must be
	// at least Size because an SFC never repeats a category in the
	// paper's generator (distinct VNF sets per position).
	VNFKinds int
}

// Default returns the paper's base SFC configuration: size 5, width 3.
func Default(vnfKinds int) Config {
	return Config{Size: 5, LayerWidth: 3, VNFKinds: vnfKinds}
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	switch {
	case c.Size < 1:
		return fmt.Errorf("sfcgen: size %d < 1", c.Size)
	case c.LayerWidth < 1:
		return fmt.Errorf("sfcgen: layer width %d < 1", c.LayerWidth)
	case c.VNFKinds < c.Size:
		return fmt.Errorf("sfcgen: %d VNF kinds cannot supply %d distinct VNFs", c.VNFKinds, c.Size)
	}
	return nil
}

// Generate draws one DAG-SFC: Size distinct categories sampled uniformly,
// grouped into layers of LayerWidth (the final layer takes the remainder).
// A size-5 width-3 SFC therefore has the structure [a|b|c +m] -> [d|e +m],
// the same structure for every trial but fresh categories each time.
func Generate(cfg Config, rng *rand.Rand) (sfc.DAGSFC, error) {
	if err := cfg.Validate(); err != nil {
		return sfc.DAGSFC{}, err
	}
	perm := rng.Perm(cfg.VNFKinds)
	vnfs := make([]network.VNFID, cfg.Size)
	for i := range vnfs {
		vnfs[i] = network.VNFID(perm[i] + 1)
	}
	var s sfc.DAGSFC
	for start := 0; start < len(vnfs); start += cfg.LayerWidth {
		end := start + cfg.LayerWidth
		if end > len(vnfs) {
			end = len(vnfs)
		}
		s.Layers = append(s.Layers, sfc.Layer{VNFs: vnfs[start:end]})
	}
	return s, nil
}

// MustGenerate is Generate that panics on configuration errors.
func MustGenerate(cfg Config, rng *rand.Rand) sfc.DAGSFC {
	s, err := Generate(cfg, rng)
	if err != nil {
		panic(err)
	}
	return s
}
