// Package faults provides the deterministic fault injector of the
// survivability layer: seeded, scripted schedules of substrate faults
// (link down, node down, capacity degradation) replayed against anything
// that can apply a network.Fault — a raw ledger in the offline harnesses,
// the serving control plane over its repair-aware entry points, or a
// remote server over HTTP via the chaos driver's client adapter.
//
// Schedules are plain data: a list of incidents, each a fault held for a
// duration. The same schedule replayed against the same initial state
// produces the same sequence of apply/restore calls in the same order —
// the property the chaos invariant tests pin down.
package faults

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"dagsfc/internal/graph"
	"dagsfc/internal/network"
)

// Incident is one scheduled fault: it strikes at At and is repaired
// Duration later. Times are in abstract schedule units — seconds for the
// live injector (scaled by Replay), simulation time for online harnesses.
type Incident struct {
	At       float64
	Duration float64
	Fault    network.Fault
}

// Schedule is an ordered set of incidents. The zero value is an empty
// schedule.
type Schedule []Incident

// Validate reports the first structural problem: negative times, bad
// fault targets (checked against net when non-nil).
func (s Schedule) Validate(net *network.Network) error {
	for i, inc := range s {
		if inc.At < 0 {
			return fmt.Errorf("faults: incident %d starts at negative time %v", i, inc.At)
		}
		if inc.Duration <= 0 {
			return fmt.Errorf("faults: incident %d has non-positive duration %v", i, inc.Duration)
		}
		if net != nil {
			if err := inc.Fault.Validate(net); err != nil {
				return fmt.Errorf("faults: incident %d: %w", i, err)
			}
		}
	}
	return nil
}

// Event is one apply or restore transition of an incident's fault.
type Event struct {
	At    float64
	Apply bool
	Fault network.Fault
	// Incident is the index into the source Schedule.
	Incident int
}

// Events expands the schedule into its ordered transition list: time
// ascending; at equal times restores fire before applies (capacity comes
// back before new faults claim it, mirroring online.SortEvents); remaining
// ties break on incident index. The schedule itself is not modified.
func (s Schedule) Events() []Event {
	evs := make([]Event, 0, 2*len(s))
	for i, inc := range s {
		evs = append(evs, Event{At: inc.At, Apply: true, Fault: inc.Fault, Incident: i})
		evs = append(evs, Event{At: inc.At + inc.Duration, Apply: false, Fault: inc.Fault, Incident: i})
	}
	sort.SliceStable(evs, func(a, b int) bool {
		if evs[a].At != evs[b].At {
			return evs[a].At < evs[b].At
		}
		if evs[a].Apply != evs[b].Apply {
			return !evs[a].Apply
		}
		return evs[a].Incident < evs[b].Incident
	})
	return evs
}

// GenConfig parameterizes Generate. Nodes/Edges describe the substrate
// (counts are enough — the generator never needs the topology, so the
// chaos driver can build schedules from a remote server's /v1/network
// view).
type GenConfig struct {
	Nodes, Edges int
	// Count is the number of incidents to draw.
	Count int
	// MeanGap is the mean exponential gap between incident starts;
	// MeanHold the mean exponential fault duration.
	MeanGap, MeanHold float64
	// NodeFrac is the probability an incident is a node failure;
	// DegradeFrac the probability a link incident is a degradation rather
	// than an outage. Both in [0,1].
	NodeFrac, DegradeFrac float64
	// HardFrac is the probability a link incident is a hard edge-down
	// (residual pinned to zero) instead of a capacity quarantine. In [0,1];
	// zero keeps the generator's rng stream identical to pre-hard-fault
	// schedules.
	HardFrac float64
}

// Generate draws a seeded schedule: incident starts follow exponential
// gaps, durations exponential holds, targets uniform over the substrate.
// The same rng state yields the same schedule.
func Generate(cfg GenConfig, rng *rand.Rand) (Schedule, error) {
	switch {
	case cfg.Nodes < 1 || cfg.Edges < 1:
		return nil, fmt.Errorf("faults: substrate %d nodes / %d edges too small", cfg.Nodes, cfg.Edges)
	case cfg.Count < 0:
		return nil, fmt.Errorf("faults: negative incident count %d", cfg.Count)
	case cfg.MeanGap <= 0 || cfg.MeanHold <= 0:
		return nil, fmt.Errorf("faults: non-positive mean gap %v / hold %v", cfg.MeanGap, cfg.MeanHold)
	case cfg.NodeFrac < 0 || cfg.NodeFrac > 1 || cfg.DegradeFrac < 0 || cfg.DegradeFrac > 1 || cfg.HardFrac < 0 || cfg.HardFrac > 1:
		return nil, fmt.Errorf("faults: fractions outside [0,1]")
	}
	s := make(Schedule, 0, cfg.Count)
	clock := 0.0
	for i := 0; i < cfg.Count; i++ {
		clock += rng.ExpFloat64() * cfg.MeanGap
		inc := Incident{
			At: clock,
			// A strictly positive floor keeps Validate happy on tiny draws.
			Duration: rng.ExpFloat64()*cfg.MeanHold + 1e-6,
		}
		switch {
		case rng.Float64() < cfg.NodeFrac:
			inc.Fault = network.Fault{Kind: network.FaultNodeDown, Node: graph.NodeID(rng.Intn(cfg.Nodes))}
		// The HardFrac > 0 short-circuit keeps the rng stream (and thus
		// every existing seeded schedule) unchanged when the knob is off.
		case cfg.HardFrac > 0 && rng.Float64() < cfg.HardFrac:
			inc.Fault = network.Fault{Kind: network.FaultEdgeDown, Link: graph.EdgeID(rng.Intn(cfg.Edges))}
		case rng.Float64() < cfg.DegradeFrac:
			inc.Fault = network.Fault{
				Kind:     network.FaultLinkDegrade,
				Link:     graph.EdgeID(rng.Intn(cfg.Edges)),
				Fraction: 0.25 + 0.75*rng.Float64(),
			}
		default:
			inc.Fault = network.Fault{Kind: network.FaultLinkDown, Link: graph.EdgeID(rng.Intn(cfg.Edges))}
		}
		s = append(s, inc)
	}
	return s, nil
}

// Format renders the schedule in the line-oriented text form Parse reads:
//
//	# comment
//	<at> <duration> link-down <edge>
//	<at> <duration> node-down <node>
//	<at> <duration> link-degrade <edge> <fraction>
//	<at> <duration> edge-down <edge>
func (s Schedule) Format() string {
	var b strings.Builder
	for _, inc := range s {
		fmt.Fprintf(&b, "%g %g %s\n", inc.At, inc.Duration, inc.Fault)
	}
	return b.String()
}

// ParseKind maps a fault kind's text form ("link-down", "node-down",
// "link-degrade", "edge-down" — the strings network.FaultKind.String
// produces) back to the kind. The schedule parser and the server's JSON
// fault endpoints share it.
func ParseKind(s string) (network.FaultKind, error) {
	switch s {
	case "link-down":
		return network.FaultLinkDown, nil
	case "node-down":
		return network.FaultNodeDown, nil
	case "link-degrade":
		return network.FaultLinkDegrade, nil
	case "edge-down":
		return network.FaultEdgeDown, nil
	}
	return 0, fmt.Errorf("faults: unknown fault kind %q", s)
}

// Parse reads the text form written by Format. Blank lines and #-comments
// are skipped. The result is structurally validated (without a network —
// pass the schedule through Validate(net) to range-check targets).
func Parse(r io.Reader) (Schedule, error) {
	var s Schedule
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 4 {
			return nil, fmt.Errorf("faults: line %d: want '<at> <dur> <kind> <target> [frac]', got %q", line, text)
		}
		at, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("faults: line %d: bad start time %q", line, fields[0])
		}
		dur, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("faults: line %d: bad duration %q", line, fields[1])
		}
		target, err := strconv.Atoi(fields[3])
		if err != nil {
			return nil, fmt.Errorf("faults: line %d: bad target %q", line, fields[3])
		}
		inc := Incident{At: at, Duration: dur}
		kind, err := ParseKind(fields[2])
		if err != nil {
			return nil, fmt.Errorf("faults: line %d: unknown fault kind %q", line, fields[2])
		}
		switch kind {
		case network.FaultLinkDown, network.FaultEdgeDown:
			inc.Fault = network.Fault{Kind: kind, Link: graph.EdgeID(target)}
		case network.FaultNodeDown:
			inc.Fault = network.Fault{Kind: kind, Node: graph.NodeID(target)}
		case network.FaultLinkDegrade:
			if len(fields) < 5 {
				return nil, fmt.Errorf("faults: line %d: link-degrade needs a fraction", line)
			}
			frac, err := strconv.ParseFloat(fields[4], 64)
			if err != nil {
				return nil, fmt.Errorf("faults: line %d: bad fraction %q", line, fields[4])
			}
			inc.Fault = network.Fault{Kind: kind, Link: graph.EdgeID(target), Fraction: frac}
		}
		s = append(s, inc)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := s.Validate(nil); err != nil {
		return nil, err
	}
	return s, nil
}
