package faults

import (
	"context"
	"fmt"
	"time"

	"dagsfc/internal/network"
)

// Fault aliases network.Fault so Target implementations outside this
// package read naturally (faults.Fault at the injection boundary, the
// network type underneath).
type Fault = network.Fault

// Target is anything a schedule can be replayed against: a raw
// network.Ledger, the server's repair-aware fault entry points, or an
// HTTP client adapter talking to a remote server.
type Target interface {
	ApplyFault(f Fault) error
	RestoreFault(f Fault) error
}

// Replay drives the schedule's transitions against target in order. Each
// event's At is scaled by unit to a wall-clock offset from the replay's
// start; a zero unit replays the whole schedule immediately, still in
// deterministic event order — the mode the tests and sim harnesses use.
//
// onEvent, when non-nil, observes every transition with the error the
// target returned; Replay itself only stops early when ctx is cancelled.
// Target errors do not abort the replay: a restore whose apply was
// rejected is the schedule's problem, not a reason to strand every later
// incident.
func Replay(ctx context.Context, target Target, s Schedule, unit time.Duration, onEvent func(Event, error)) error {
	if target == nil {
		return fmt.Errorf("faults: nil replay target")
	}
	if err := s.Validate(nil); err != nil {
		return err
	}
	start := time.Now()
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for _, ev := range s.Events() {
		if unit > 0 {
			due := start.Add(time.Duration(ev.At * float64(unit)))
			if wait := time.Until(due); wait > 0 {
				if timer == nil {
					timer = time.NewTimer(wait)
				} else {
					timer.Reset(wait)
				}
				select {
				case <-ctx.Done():
					return ctx.Err()
				case <-timer.C:
				}
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		var err error
		if ev.Apply {
			err = target.ApplyFault(ev.Fault)
		} else {
			err = target.RestoreFault(ev.Fault)
		}
		if onEvent != nil {
			onEvent(ev, err)
		}
	}
	return nil
}
