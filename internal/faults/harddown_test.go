package faults

import (
	"math/rand"
	"strings"
	"testing"

	"dagsfc/internal/core"
	"dagsfc/internal/graph"
	"dagsfc/internal/network"
)

// TestHardKindsFormatParseRoundTrip pins the text round-trip of the hard
// failure kinds the protection layer injects: edge-down and node-down must
// survive Format -> Parse exactly, alongside the quarantine kinds.
func TestHardKindsFormatParseRoundTrip(t *testing.T) {
	s := Schedule{
		{At: 0.5, Duration: 2, Fault: Fault{Kind: network.FaultEdgeDown, Link: 3}},
		{At: 1, Duration: 1.25, Fault: Fault{Kind: network.FaultNodeDown, Node: 7}},
		{At: 2, Duration: 0.5, Fault: Fault{Kind: network.FaultEdgeDown, Link: 0}},
		{At: 3, Duration: 1, Fault: Fault{Kind: network.FaultLinkDown, Link: 1}},
	}
	text := s.Format()
	if !strings.Contains(text, "edge-down 3") || !strings.Contains(text, "node-down 7") {
		t.Fatalf("Format missing hard kinds:\n%s", text)
	}
	got, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatalf("Parse: %v\ninput:\n%s", err, text)
	}
	if len(got) != len(s) {
		t.Fatalf("round-trip length %d, want %d", len(got), len(s))
	}
	for i := range s {
		if got[i] != s[i] {
			t.Fatalf("incident %d = %+v, want %+v", i, got[i], s[i])
		}
	}
	for _, kind := range []network.FaultKind{network.FaultEdgeDown, network.FaultNodeDown} {
		back, err := ParseKind(kind.String())
		if err != nil || back != kind {
			t.Fatalf("ParseKind(%q) = %v, %v", kind.String(), back, err)
		}
	}
}

// TestGenerateHardFrac checks the generator draws edge-down incidents when
// asked, keeps the schedule valid, and — with the knob off — produces the
// exact schedule it produced before the knob existed (same rng stream).
func TestGenerateHardFrac(t *testing.T) {
	cfg := GenConfig{
		Nodes: 20, Edges: 40, Count: 60,
		MeanGap: 1, MeanHold: 2, NodeFrac: 0.2, DegradeFrac: 0.3, HardFrac: 0.5,
	}
	s, err := Generate(cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(nil); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
	hard := 0
	for _, inc := range s {
		if inc.Fault.Kind == network.FaultEdgeDown {
			hard++
		}
	}
	if hard == 0 {
		t.Fatal("HardFrac=0.5 drew zero edge-down incidents in 60 draws")
	}

	off := cfg
	off.HardFrac = 0
	a, err := Generate(off, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for _, inc := range a {
		if inc.Fault.Kind == network.FaultEdgeDown {
			t.Fatal("HardFrac=0 drew an edge-down incident")
		}
	}

	if _, err := Generate(GenConfig{
		Nodes: 2, Edges: 2, Count: 1, MeanGap: 1, MeanHold: 1, HardFrac: 1.5,
	}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("HardFrac outside [0,1] accepted")
	}
}

// TestHitsEdgeDown checks the strand predicate treats edge-down like the
// other link kinds: it hits exactly the flows whose real paths use the edge.
func TestHitsEdgeDown(t *testing.T) {
	net := testNet(t)
	sol := &core.Solution{
		Layers: []core.LayerEmbedding{
			{Nodes: []graph.NodeID{1}, MergerNode: 1,
				InterPaths: []graph.Path{{From: 0, Edges: []graph.EdgeID{0}}}},
		},
		TailPath: graph.Path{From: 1, Edges: []graph.EdgeID{1}},
	}
	if !Hits(net, sol, Fault{Kind: network.FaultEdgeDown, Link: 0}) {
		t.Fatal("edge-down on a used edge did not hit")
	}
	if !Hits(net, sol, Fault{Kind: network.FaultEdgeDown, Link: 1}) {
		t.Fatal("edge-down on the tail edge did not hit")
	}
	if Hits(net, sol, Fault{Kind: network.FaultEdgeDown, Link: 2}) {
		t.Fatal("edge-down on an unused edge hit")
	}
}
