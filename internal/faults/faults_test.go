package faults

import (
	"context"
	"math/rand"
	"strings"
	"testing"
	"time"

	"dagsfc/internal/core"
	"dagsfc/internal/graph"
	"dagsfc/internal/network"
)

func testNet(t *testing.T) *network.Network {
	t.Helper()
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1, 10) // e0
	g.MustAddEdge(1, 2, 2, 10) // e1
	g.MustAddEdge(2, 3, 3, 10) // e2
	net := network.New(g, network.Catalog{N: 2})
	net.MustAddInstance(1, 1, 10, 5)
	net.MustAddInstance(2, 2, 20, 5)
	return net
}

func TestEventsOrdering(t *testing.T) {
	s := Schedule{
		{At: 5, Duration: 5, Fault: Fault{Kind: network.FaultLinkDown, Link: 0}},
		{At: 2, Duration: 3, Fault: Fault{Kind: network.FaultLinkDown, Link: 1}},
		{At: 5, Duration: 1, Fault: Fault{Kind: network.FaultNodeDown, Node: 2}},
	}
	evs := s.Events()
	if len(evs) != 6 {
		t.Fatalf("len(Events) = %d, want 6", len(evs))
	}
	// t=2 apply#1, t=5 restore#1 BEFORE the two applies, then apply#0,
	// apply#2 (incident order), t=6 restore#2, t=10 restore#0.
	want := []struct {
		at    float64
		apply bool
		inc   int
	}{
		{2, true, 1}, {5, false, 1}, {5, true, 0}, {5, true, 2}, {6, false, 2}, {10, false, 0},
	}
	for i, w := range want {
		ev := evs[i]
		if ev.At != w.at || ev.Apply != w.apply || ev.Incident != w.inc {
			t.Fatalf("event %d = {At:%v Apply:%v Incident:%d}, want %+v", i, ev.At, ev.Apply, ev.Incident, w)
		}
	}
}

func TestGenerateDeterministicAndValid(t *testing.T) {
	cfg := GenConfig{
		Nodes: 20, Edges: 40, Count: 50,
		MeanGap: 1, MeanHold: 2, NodeFrac: 0.3, DegradeFrac: 0.4,
	}
	a, err := Generate(cfg, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != cfg.Count {
		t.Fatalf("len = %d, want %d", len(a), cfg.Count)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("incident %d differs across same-seed generations: %+v vs %+v", i, a[i], b[i])
		}
	}
	if err := a.Validate(nil); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
	kinds := map[network.FaultKind]int{}
	for _, inc := range a {
		kinds[inc.Fault.Kind]++
	}
	if len(kinds) != 3 {
		t.Fatalf("expected all three fault kinds in 50 draws, got %v", kinds)
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	s, err := Generate(GenConfig{
		Nodes: 5, Edges: 8, Count: 12,
		MeanGap: 1, MeanHold: 1, NodeFrac: 0.25, DegradeFrac: 0.5,
	}, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	text := s.Format()
	got, err := Parse(strings.NewReader("# a comment\n\n" + text))
	if err != nil {
		t.Fatalf("Parse: %v\ninput:\n%s", err, text)
	}
	if len(got) != len(s) {
		t.Fatalf("round-trip length %d, want %d", len(got), len(s))
	}
	for i := range s {
		if got[i].Fault != s[i].Fault {
			t.Fatalf("incident %d fault %+v, want %+v", i, got[i].Fault, s[i].Fault)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"1 2 link-down",            // missing target
		"x 2 link-down 0",          // bad time
		"1 2 link-degrade 0",       // missing fraction
		"1 2 meteor-strike 0",      // unknown kind
		"1 -2 link-down 0",         // negative duration
		"1 2 link-degrade 0 nope",  // bad fraction
		"1 2 link-down notanumber", // bad target
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Fatalf("Parse(%q) succeeded", bad)
		}
	}
}

// TestReplayAgainstLedger replays a schedule immediately (unit 0) against
// a raw ledger: every apply/restore must land in event order and the
// ledger must drain back to a fault-free state.
func TestReplayAgainstLedger(t *testing.T) {
	net := testNet(t)
	ledger := network.NewLedger(net)
	s := Schedule{
		{At: 0, Duration: 2, Fault: Fault{Kind: network.FaultLinkDown, Link: 1}},
		{At: 1, Duration: 2, Fault: Fault{Kind: network.FaultNodeDown, Node: 2}},
		{At: 1.5, Duration: 0.1, Fault: Fault{Kind: network.FaultLinkDegrade, Link: 0, Fraction: 0.5}},
	}
	var seen []Event
	err := Replay(context.Background(), ledger, s, 0, func(ev Event, err error) {
		if err != nil {
			t.Fatalf("event %+v: %v", ev, err)
		}
		seen = append(seen, ev)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 6 {
		t.Fatalf("observed %d events, want 6", len(seen))
	}
	if ledger.FaultsActive() {
		t.Fatal("quarantine left behind after full replay")
	}
	for e := 0; e < net.G.NumEdges(); e++ {
		if got := ledger.EdgeResidual(graph.EdgeID(e)); got != 10 {
			t.Fatalf("edge %d residual = %v, want exactly 10", e, got)
		}
	}
}

func TestReplayCancellation(t *testing.T) {
	net := testNet(t)
	ledger := network.NewLedger(net)
	s := Schedule{
		{At: 0, Duration: 1000, Fault: Fault{Kind: network.FaultLinkDown, Link: 0}},
		{At: 500, Duration: 1000, Fault: Fault{Kind: network.FaultLinkDown, Link: 1}},
	}
	ctx, cancel := context.WithCancel(context.Background())
	fired := 0
	done := make(chan error, 1)
	go func() {
		// 1s units: the first event fires immediately, the second would be
		// minutes away — cancellation must interrupt the wait promptly.
		done <- Replay(ctx, ledger, s, time.Second, func(Event, error) { fired++ })
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Replay returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Replay did not return after cancellation")
	}
	if fired != 1 {
		t.Fatalf("fired %d events before cancellation, want 1", fired)
	}
}

func TestHits(t *testing.T) {
	net := testNet(t)
	// Flow 0 -> f1@1 -> f2@2 -> 3 along the line: edges 0,1,2; VNF nodes 1,2.
	sol := &core.Solution{
		Layers: []core.LayerEmbedding{
			{Nodes: []graph.NodeID{1}, MergerNode: 1,
				InterPaths: []graph.Path{{From: 0, Edges: []graph.EdgeID{0}}}},
			{Nodes: []graph.NodeID{2}, MergerNode: 2,
				InterPaths: []graph.Path{{From: 1, Edges: []graph.EdgeID{1}}}},
		},
		TailPath: graph.Path{From: 2, Edges: []graph.EdgeID{2}},
	}
	cases := []struct {
		f    Fault
		want bool
	}{
		{Fault{Kind: network.FaultLinkDown, Link: 0}, true},
		{Fault{Kind: network.FaultLinkDown, Link: 2}, true}, // tail path
		{Fault{Kind: network.FaultLinkDegrade, Link: 1, Fraction: 0.5}, true},
		{Fault{Kind: network.FaultNodeDown, Node: 2}, true}, // hosts f2
		{Fault{Kind: network.FaultNodeDown, Node: 0}, true}, // transit: severs edge 0
		{Fault{Kind: network.FaultNodeDown, Node: 3}, true}, // dst endpoint of tail edge
	}
	for _, c := range cases {
		if got := Hits(net, sol, c.f); got != c.want {
			t.Fatalf("Hits(%v) = %v, want %v", c.f, got, c.want)
		}
	}
	// A flow not touching the failed elements: src==dst-style single edge 0.
	short := &core.Solution{
		Layers: []core.LayerEmbedding{
			{Nodes: []graph.NodeID{1}, MergerNode: 1,
				InterPaths: []graph.Path{{From: 0, Edges: []graph.EdgeID{0}}}},
		},
		TailPath: graph.Path{From: 1},
	}
	if Hits(net, short, Fault{Kind: network.FaultLinkDown, Link: 2}) {
		t.Fatal("Hits matched a link the flow never uses")
	}
	if Hits(net, short, Fault{Kind: network.FaultNodeDown, Node: 3}) {
		t.Fatal("Hits matched a node the flow never touches")
	}
}
