package faults

import (
	"dagsfc/internal/core"
	"dagsfc/internal/graph"
	"dagsfc/internal/network"
)

// Hits reports whether a committed embedding traverses the element a
// fault takes out — the predicate the server's repair scan uses to decide
// which flows a fault strands.
//
//   - Link faults (down and degrade) hit every flow whose real-paths use
//     the link.
//   - Node faults hit flows hosting a VNF or merger on the node AND flows
//     whose paths merely transit it: a transit node's failure severs its
//     incident links, so those are matched through the path edges.
func Hits(net *network.Network, sol *core.Solution, f Fault) bool {
	hit := false
	switch f.Kind {
	case network.FaultLinkDown, network.FaultLinkDegrade, network.FaultEdgeDown:
		sol.VisitEdges(func(e graph.EdgeID) {
			if e == f.Link {
				hit = true
			}
		})
	case network.FaultNodeDown:
		sol.VisitNodes(func(v graph.NodeID) {
			if v == f.Node {
				hit = true
			}
		})
		if !hit {
			sol.VisitEdges(func(e graph.EdgeID) {
				ed := net.G.Edge(e)
				if ed.A == f.Node || ed.B == f.Node {
					hit = true
				}
			})
		}
	}
	return hit
}
