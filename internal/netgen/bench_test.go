package netgen

import (
	"math/rand"
	"testing"
)

func BenchmarkGenerate500(b *testing.B) {
	cfg := Default()
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerate1000(b *testing.B) {
	cfg := Default()
	cfg.Nodes = 1000
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg, rng); err != nil {
			b.Fatal(err)
		}
	}
}
