// Package netgen implements the paper's random network generator (§5.1):
// it creates nodes, connects them with a random spanning tree plus extra
// random edges until the target average connectivity is met, deploys each
// VNF category on nodes with the configured deploying ratio, prices VNF
// instances around an average with the configured fluctuation ratio, and
// prices links so the average link price over the average VNF price equals
// the configured price ratio.
package netgen

import (
	"fmt"
	"math/rand"

	"dagsfc/internal/graph"
	"dagsfc/internal/network"
)

// Config selects the distribution the generator draws from. The paper's
// Table 2 base configuration is returned by Default.
type Config struct {
	// Nodes is the network size (number of nodes).
	Nodes int
	// Connectivity is the target average node degree.
	Connectivity float64
	// VNFKinds is the number of regular VNF categories n.
	VNFKinds int
	// DeployRatio is the probability that a given category is deployed on
	// a given node. Every category is guaranteed at least one deployment.
	DeployRatio float64
	// AvgVNFPrice is the mean rental price of regular VNF instances.
	AvgVNFPrice float64
	// PriceRatio is average link price / average VNF price (the paper's
	// "average price ratio").
	PriceRatio float64
	// VNFPriceFluct is the paper's "VNF price fluctuation ratio": half the
	// max-min price gap over the average price. Prices are drawn uniformly
	// from [avg*(1-f), avg*(1+f)].
	VNFPriceFluct float64
	// LinkPriceFluct is the same fluctuation applied to link prices. Zero
	// means "use VNFPriceFluct".
	LinkPriceFluct float64
	// MergerPriceFactor scales AvgVNFPrice to obtain the average merger
	// rental price. Mergers are deployed with DeployRatio like any
	// category.
	MergerPriceFactor float64
	// LinkCapacity and InstanceCapacity are uniform capacities, ample by
	// default so that the single-flow experiments are price-driven, as in
	// the paper.
	LinkCapacity     float64
	InstanceCapacity float64
}

// Default returns the paper's Table 2 base configuration: 500 nodes,
// connectivity 6, deploy ratio 50%, price ratio 20%, fluctuation 5%.
func Default() Config {
	return Config{
		Nodes:             500,
		Connectivity:      6,
		VNFKinds:          10,
		DeployRatio:       0.50,
		AvgVNFPrice:       100,
		PriceRatio:        0.20,
		VNFPriceFluct:     0.05,
		MergerPriceFactor: 0.25,
		LinkCapacity:      1000,
		InstanceCapacity:  1000,
	}
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	switch {
	case c.Nodes < 2:
		return fmt.Errorf("netgen: need at least 2 nodes, have %d", c.Nodes)
	case c.Connectivity < 0:
		return fmt.Errorf("netgen: negative connectivity %v", c.Connectivity)
	case c.VNFKinds < 1:
		return fmt.Errorf("netgen: need at least 1 VNF kind, have %d", c.VNFKinds)
	case c.DeployRatio <= 0 || c.DeployRatio > 1:
		return fmt.Errorf("netgen: deploy ratio %v outside (0,1]", c.DeployRatio)
	case c.AvgVNFPrice <= 0:
		return fmt.Errorf("netgen: non-positive average VNF price %v", c.AvgVNFPrice)
	case c.PriceRatio < 0:
		return fmt.Errorf("netgen: negative price ratio %v", c.PriceRatio)
	case c.VNFPriceFluct < 0 || c.VNFPriceFluct > 1:
		return fmt.Errorf("netgen: VNF price fluctuation %v outside [0,1]", c.VNFPriceFluct)
	case c.LinkPriceFluct < 0 || c.LinkPriceFluct > 1:
		return fmt.Errorf("netgen: link price fluctuation %v outside [0,1]", c.LinkPriceFluct)
	case c.MergerPriceFactor < 0:
		return fmt.Errorf("netgen: negative merger price factor %v", c.MergerPriceFactor)
	case c.LinkCapacity <= 0 || c.InstanceCapacity <= 0:
		return fmt.Errorf("netgen: capacities must be positive")
	}
	return nil
}

// Generate draws one random network from the configured distribution.
// Results are deterministic for a given rng state.
func Generate(cfg Config, rng *rand.Rand) (*network.Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := graph.New(cfg.Nodes)

	linkFluct := cfg.LinkPriceFluct
	if linkFluct == 0 {
		linkFluct = cfg.VNFPriceFluct
	}
	avgLinkPrice := cfg.PriceRatio * cfg.AvgVNFPrice
	linkPrice := func() float64 { return fluctuate(avgLinkPrice, linkFluct, rng) }

	// Step 1: random spanning tree guarantees connectedness.
	perm := rng.Perm(cfg.Nodes)
	for i := 1; i < cfg.Nodes; i++ {
		a := graph.NodeID(perm[i])
		b := graph.NodeID(perm[rng.Intn(i)])
		g.MustAddEdge(a, b, linkPrice(), cfg.LinkCapacity)
	}

	// Step 2: extra random edges until the average degree target. We avoid
	// duplicating an existing link; in tiny dense configurations the loop
	// may run out of fresh pairs, so bound the attempts.
	targetEdges := int(cfg.Connectivity * float64(cfg.Nodes) / 2)
	attempts := 0
	maxAttempts := 50 * (targetEdges + cfg.Nodes)
	for g.NumEdges() < targetEdges && attempts < maxAttempts {
		attempts++
		a := graph.NodeID(rng.Intn(cfg.Nodes))
		b := graph.NodeID(rng.Intn(cfg.Nodes))
		if a == b || g.HasEdge(a, b) {
			continue
		}
		g.MustAddEdge(a, b, linkPrice(), cfg.LinkCapacity)
	}

	// Step 3: deploy VNFs, including the merger category.
	return Populate(g, cfg, rng)
}

// Populate deploys VNF instances (with the configured deploying ratio and
// price distribution) onto an existing topology, returning the resulting
// network. Only the deployment-related fields of cfg are used; topology
// fields (Nodes, Connectivity) are ignored. Every category gets at least
// one instance. Use this to run the paper's workload on the alternative
// topologies of internal/topo.
func Populate(g *graph.Graph, cfg Config, rng *rand.Rand) (*network.Network, error) {
	if g.NumNodes() < 1 {
		return nil, fmt.Errorf("netgen: topology has no nodes")
	}
	probe := cfg
	probe.Nodes = g.NumNodes()
	if probe.Connectivity < 0 {
		probe.Connectivity = 0
	}
	if err := probe.Validate(); err != nil && g.NumNodes() >= 2 {
		return nil, err
	}
	nodes := g.NumNodes()
	net := network.New(g, network.Catalog{N: cfg.VNFKinds})
	deploy := func(f network.VNFID, avgPrice float64) {
		deployed := false
		for v := 0; v < nodes; v++ {
			if rng.Float64() < cfg.DeployRatio {
				net.MustAddInstance(graph.NodeID(v), f, fluctuate(avgPrice, cfg.VNFPriceFluct, rng), cfg.InstanceCapacity)
				deployed = true
			}
		}
		if !deployed {
			v := graph.NodeID(rng.Intn(nodes))
			net.MustAddInstance(v, f, fluctuate(avgPrice, cfg.VNFPriceFluct, rng), cfg.InstanceCapacity)
		}
	}
	for i := 1; i <= cfg.VNFKinds; i++ {
		deploy(network.VNFID(i), cfg.AvgVNFPrice)
	}
	deploy(net.Catalog.Merger(), cfg.MergerPriceFactor*cfg.AvgVNFPrice)
	return net, nil
}

// LinkPricer returns a sampler of link prices under cfg's price ratio and
// fluctuation, for topology builders that create their own edges.
func (c Config) LinkPricer(rng *rand.Rand) func() float64 {
	fluct := c.LinkPriceFluct
	if fluct == 0 {
		fluct = c.VNFPriceFluct
	}
	avg := c.PriceRatio * c.AvgVNFPrice
	return func() float64 { return fluctuate(avg, fluct, rng) }
}

// MustGenerate is Generate that panics on configuration errors.
func MustGenerate(cfg Config, rng *rand.Rand) *network.Network {
	net, err := Generate(cfg, rng)
	if err != nil {
		panic(err)
	}
	return net
}

// fluctuate draws uniformly from [avg*(1-f), avg*(1+f)], matching the
// paper's definition of the price fluctuation ratio (half the max-min gap
// over the average).
func fluctuate(avg, f float64, rng *rand.Rand) float64 {
	if f == 0 {
		return avg
	}
	return avg * (1 - f + 2*f*rng.Float64())
}
