package netgen

import (
	"math"
	"math/rand"
	"testing"

	"dagsfc/internal/graph"
	"dagsfc/internal/network"
)

func smallCfg() Config {
	cfg := Default()
	cfg.Nodes = 60
	cfg.VNFKinds = 5
	return cfg
}

func TestDefaultMatchesTable2(t *testing.T) {
	cfg := Default()
	if cfg.Nodes != 500 || cfg.Connectivity != 6 || cfg.DeployRatio != 0.5 ||
		cfg.PriceRatio != 0.2 || cfg.VNFPriceFluct != 0.05 {
		t.Fatalf("Default deviates from Table 2: %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Nodes = 1 },
		func(c *Config) { c.Connectivity = -1 },
		func(c *Config) { c.VNFKinds = 0 },
		func(c *Config) { c.DeployRatio = 0 },
		func(c *Config) { c.DeployRatio = 1.5 },
		func(c *Config) { c.AvgVNFPrice = 0 },
		func(c *Config) { c.PriceRatio = -0.1 },
		func(c *Config) { c.VNFPriceFluct = 2 },
		func(c *Config) { c.LinkPriceFluct = -0.5 },
		func(c *Config) { c.MergerPriceFactor = -1 },
		func(c *Config) { c.LinkCapacity = 0 },
		func(c *Config) { c.InstanceCapacity = 0 },
	}
	for i, mutate := range bad {
		cfg := Default()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("bad config %d validated: %+v", i, cfg)
		}
	}
}

func TestGenerateConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		net := MustGenerate(smallCfg(), rng)
		if !net.G.Connected() {
			t.Fatalf("trial %d: generated network disconnected", trial)
		}
	}
}

func TestGenerateHitsConnectivityTarget(t *testing.T) {
	cfg := smallCfg()
	cfg.Nodes = 200
	cfg.Connectivity = 6
	rng := rand.New(rand.NewSource(2))
	net := MustGenerate(cfg, rng)
	if d := net.G.AvgDegree(); math.Abs(d-6) > 0.2 {
		t.Fatalf("avg degree = %v, want ~6", d)
	}
}

func TestGenerateTreeWhenConnectivityLow(t *testing.T) {
	// Connectivity 2 on n nodes asks for n edges; a tree already has n-1,
	// so the graph stays sparse but connected.
	cfg := smallCfg()
	cfg.Connectivity = 2
	net := MustGenerate(cfg, rand.New(rand.NewSource(3)))
	if !net.G.Connected() {
		t.Fatal("sparse network disconnected")
	}
	if net.G.NumEdges() < cfg.Nodes-1 || net.G.NumEdges() > cfg.Nodes {
		t.Fatalf("edges = %d for connectivity 2 on %d nodes", net.G.NumEdges(), cfg.Nodes)
	}
}

func TestGenerateDeployRatioStatistics(t *testing.T) {
	cfg := smallCfg()
	cfg.Nodes = 400
	cfg.DeployRatio = 0.5
	net := MustGenerate(cfg, rand.New(rand.NewSource(4)))
	for i := 1; i <= cfg.VNFKinds; i++ {
		nodes := len(net.NodesWith(network.VNFID(i)))
		frac := float64(nodes) / float64(cfg.Nodes)
		if frac < 0.38 || frac > 0.62 {
			t.Fatalf("category %d deployed on %.0f%% of nodes, want ~50%%", i, 100*frac)
		}
	}
}

func TestGenerateEveryCategoryDeployed(t *testing.T) {
	cfg := smallCfg()
	cfg.Nodes = 10
	cfg.DeployRatio = 0.01 // nearly never; the at-least-one guarantee must kick in
	net := MustGenerate(cfg, rand.New(rand.NewSource(5)))
	for i := 1; i <= cfg.VNFKinds; i++ {
		if len(net.NodesWith(network.VNFID(i))) == 0 {
			t.Fatalf("category %d never deployed", i)
		}
	}
	if len(net.NodesWith(net.Catalog.Merger())) == 0 {
		t.Fatal("merger never deployed")
	}
}

func TestGeneratePriceDistributions(t *testing.T) {
	cfg := smallCfg()
	cfg.Nodes = 300
	cfg.VNFPriceFluct = 0.05
	net := MustGenerate(cfg, rand.New(rand.NewSource(6)))

	lo, hi := cfg.AvgVNFPrice*(1-cfg.VNFPriceFluct), cfg.AvgVNFPrice*(1+cfg.VNFPriceFluct)
	net.Instances(func(inst network.Instance) {
		if !net.Catalog.IsRegular(inst.VNF) {
			return
		}
		if inst.Price < lo-1e-9 || inst.Price > hi+1e-9 {
			t.Fatalf("instance price %v outside [%v,%v]", inst.Price, lo, hi)
		}
	})
	if avg := net.AvgVNFPrice(); math.Abs(avg-cfg.AvgVNFPrice)/cfg.AvgVNFPrice > 0.02 {
		t.Fatalf("avg VNF price = %v, want ~%v", avg, cfg.AvgVNFPrice)
	}
	wantLink := cfg.PriceRatio * cfg.AvgVNFPrice
	if avg := net.AvgLinkPrice(); math.Abs(avg-wantLink)/wantLink > 0.05 {
		t.Fatalf("avg link price = %v, want ~%v", avg, wantLink)
	}
}

func TestGenerateZeroFluctuationIsExact(t *testing.T) {
	cfg := smallCfg()
	cfg.VNFPriceFluct = 0
	net := MustGenerate(cfg, rand.New(rand.NewSource(7)))
	net.Instances(func(inst network.Instance) {
		if net.Catalog.IsRegular(inst.VNF) && inst.Price != cfg.AvgVNFPrice {
			t.Fatalf("price %v with zero fluctuation", inst.Price)
		}
	})
}

func TestGenerateDeterministicForSeed(t *testing.T) {
	a := MustGenerate(smallCfg(), rand.New(rand.NewSource(42)))
	b := MustGenerate(smallCfg(), rand.New(rand.NewSource(42)))
	if a.G.NumEdges() != b.G.NumEdges() || a.NumInstances() != b.NumInstances() {
		t.Fatal("same seed produced different networks")
	}
	for _, e := range a.G.Edges() {
		f := b.G.Edge(e.ID)
		if e.A != f.A || e.B != f.B || e.Price != f.Price {
			t.Fatal("edge streams diverge for identical seeds")
		}
	}
}

func TestGenerateRejectsInvalidConfig(t *testing.T) {
	cfg := Default()
	cfg.Nodes = 0
	if _, err := Generate(cfg, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("invalid config generated")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustGenerate should panic on invalid config")
		}
	}()
	MustGenerate(cfg, rand.New(rand.NewSource(1)))
}

func TestPopulateOnCustomTopology(t *testing.T) {
	cfg := smallCfg()
	g := graph.New(30)
	for v := 1; v < 30; v++ {
		g.MustAddEdge(graph.NodeID(v-1), graph.NodeID(v), 1, 10)
	}
	rng := rand.New(rand.NewSource(9))
	net, err := Populate(g, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if net.G != g {
		t.Fatal("Populate replaced the topology")
	}
	for i := 1; i <= cfg.VNFKinds; i++ {
		if len(net.NodesWith(network.VNFID(i))) == 0 {
			t.Fatalf("category %d not deployed", i)
		}
	}
	if len(net.NodesWith(net.Catalog.Merger())) == 0 {
		t.Fatal("merger not deployed")
	}
}

func TestPopulateRejectsEmptyTopology(t *testing.T) {
	if _, err := Populate(graph.New(0), smallCfg(), rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("empty topology accepted")
	}
	bad := smallCfg()
	bad.DeployRatio = 0
	if _, err := Populate(graph.New(5), bad, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("invalid deployment config accepted")
	}
}

func TestLinkPricer(t *testing.T) {
	cfg := smallCfg()
	cfg.PriceRatio = 0.2
	cfg.AvgVNFPrice = 100
	cfg.VNFPriceFluct = 0.05
	pricer := cfg.LinkPricer(rand.New(rand.NewSource(3)))
	lo, hi := 20*0.95, 20*1.05
	sum := 0.0
	for i := 0; i < 500; i++ {
		p := pricer()
		if p < lo-1e-9 || p > hi+1e-9 {
			t.Fatalf("price %v outside [%v,%v]", p, lo, hi)
		}
		sum += p
	}
	if avg := sum / 500; math.Abs(avg-20) > 0.5 {
		t.Fatalf("avg link price %v, want ~20", avg)
	}
}

func TestGenerateNoSelfLoopsOrDuplicateLinks(t *testing.T) {
	net := MustGenerate(smallCfg(), rand.New(rand.NewSource(8)))
	seen := map[[2]graph.NodeID]bool{}
	for _, e := range net.G.Edges() {
		if e.A == e.B {
			t.Fatal("self loop generated")
		}
		key := [2]graph.NodeID{e.A, e.B}
		if e.A > e.B {
			key = [2]graph.NodeID{e.B, e.A}
		}
		if seen[key] {
			t.Fatalf("duplicate link %v", key)
		}
		seen[key] = true
	}
}
