// Package baseline implements the two benchmark algorithms the paper
// evaluates against (§5.1):
//
//   - RANV: assigns every VNF required by the SFC to a random node with
//     enough traffic processing capability, then implements the meta-paths
//     with min-cost (Dijkstra) paths;
//   - MINV: assigns every VNF to the cheapest node with enough capacity,
//     then implements the meta-paths the same way.
//
// Both reuse the core package's solution representation, cost engine and
// validator, so comparisons against BBE/MBBE are apples-to-apples.
package baseline

import (
	"fmt"
	"math/rand"
	"time"

	"dagsfc/internal/core"
	"dagsfc/internal/graph"
	"dagsfc/internal/network"
	"dagsfc/internal/telemetry"
)

// EmbedRANV embeds the problem's DAG-SFC with the randomized benchmark.
// As in the paper, a draw that turns out infeasible is a failure (the
// benchmarks "do not always result in a solution"); it is reported as
// core.ErrNoEmbedding.
func EmbedRANV(p *core.Problem, rng *rand.Rand) (*core.Result, error) {
	return embedWithPicker(p, "ranv", func(cands []network.Instance, _ network.VNFID) network.Instance {
		return cands[rng.Intn(len(cands))]
	})
}

// EmbedMINV embeds the problem's DAG-SFC with the naive greedy benchmark:
// cheapest feasible instance per position (ties broken by lowest node ID).
func EmbedMINV(p *core.Problem) (*core.Result, error) {
	return embedWithPicker(p, "minv", func(cands []network.Instance, _ network.VNFID) network.Instance {
		best := cands[0]
		for _, c := range cands[1:] {
			if c.Price < best.Price || (c.Price == best.Price && c.Node < best.Node) {
				best = c
			}
		}
		return best
	})
}

// embedWithPicker runs the shared benchmark skeleton: pick a host per DAG
// position with the given policy, then connect all meta-paths with
// min-cost paths on the real-time network.
func embedWithPicker(p *core.Problem, label string, pick func([]network.Instance, network.VNFID) network.Instance) (res *core.Result, err error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ledger := ensureLedger(p)
	g := p.Net.G

	// Telemetry: the benchmarks have no search trees, so "search nodes"
	// counts candidate instances examined, "searches" counts min-cost path
	// computations, and "candidates" counts host choices made. Shared metric
	// names with BBE/MBBE/SA keep the /metrics view comparable.
	begin := time.Now()
	var instancesExamined, pathSearches, choices int
	defer func() {
		telemetry.RecordEmbed(telemetry.EmbedSample{
			Alg:         label,
			Elapsed:     time.Since(begin),
			Failed:      err != nil,
			SearchNodes: instancesExamined,
			Searches:    pathSearches,
			Candidates:  choices,
		})
	}()

	// uses tracks how many times this embedding has already committed each
	// instance, so capacity filtering accounts for intra-SFC reuse.
	uses := make(map[core.InstanceUseKey]int)
	feasible := func(inst network.Instance) bool {
		already := float64(uses[core.InstanceUseKey{Node: inst.Node, VNF: inst.VNF}]) * p.Rate
		return ledger.InstanceResidual(inst.Node, inst.VNF)-already >= p.Rate
	}
	choose := func(f network.VNFID) (graph.NodeID, error) {
		choices++
		var cands []network.Instance
		for _, node := range p.Net.NodesWith(f) {
			instancesExamined++
			inst, ok := p.Net.Instance(node, f)
			if ok && feasible(inst) {
				cands = append(cands, inst)
			}
		}
		if len(cands) == 0 {
			return graph.None, fmt.Errorf("%w: no feasible instance of f(%d)", core.ErrNoEmbedding, f)
		}
		inst := pick(cands, f)
		uses[core.InstanceUseKey{Node: inst.Node, VNF: inst.VNF}]++
		return inst.Node, nil
	}

	minPath := func(a, b graph.NodeID) (graph.Path, error) {
		pathSearches++
		path, ok := g.MinCostPath(a, b, ledger.CostOptions(p.Rate))
		if !ok {
			return graph.Path{}, fmt.Errorf("%w: no path %d->%d", core.ErrNoEmbedding, a, b)
		}
		return path, nil
	}

	sol := &core.Solution{}
	prevEnd := p.Src
	merger := p.Net.Catalog.Merger()
	for _, spec := range p.LayerSpecs() {
		le := core.LayerEmbedding{}
		for _, f := range spec.VNFs {
			node, err := choose(f)
			if err != nil {
				return nil, err
			}
			le.Nodes = append(le.Nodes, node)
		}
		if spec.Merger {
			node, err := choose(merger)
			if err != nil {
				return nil, err
			}
			le.MergerNode = node
		} else {
			le.MergerNode = le.Nodes[0]
		}
		for _, node := range le.Nodes {
			path, err := minPath(prevEnd, node)
			if err != nil {
				return nil, err
			}
			le.InterPaths = append(le.InterPaths, path)
		}
		if spec.Merger {
			for _, node := range le.Nodes {
				path, err := minPath(node, le.MergerNode)
				if err != nil {
					return nil, err
				}
				le.InnerPaths = append(le.InnerPaths, path)
			}
		}
		sol.Layers = append(sol.Layers, le)
		prevEnd = le.EndNode()
	}
	tail, err := minPath(prevEnd, p.Dst)
	if err != nil {
		return nil, err
	}
	sol.TailPath = tail

	if err := core.Validate(p, sol); err != nil {
		// The draw was structurally fine but violates a capacity
		// constraint in aggregate (e.g. one link reused beyond its
		// bandwidth). The benchmark does not backtrack.
		return nil, fmt.Errorf("%w: %v", core.ErrNoEmbedding, err)
	}
	cb, err := core.ComputeCost(p, sol)
	if err != nil {
		return nil, err
	}
	return &core.Result{Solution: sol, Cost: cb}, nil
}

// ensureLedger mirrors Problem.ledger for use outside the core package.
func ensureLedger(p *core.Problem) *network.Ledger {
	if p.Ledger == nil {
		p.Ledger = network.NewLedger(p.Net)
	}
	return p.Ledger
}
