package baseline

import (
	"errors"
	"math/rand"
	"testing"

	"dagsfc/internal/core"
	"dagsfc/internal/graph"
	"dagsfc/internal/netgen"
	"dagsfc/internal/network"
	"dagsfc/internal/sfc"
	"dagsfc/internal/sfcgen"
)

// fixture: line 0-1-2-3 with duplicate f(1) deployments at different
// prices, single-layer SFC [f1].
func fixture() *core.Problem {
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1, 100)
	g.MustAddEdge(1, 2, 1, 100)
	g.MustAddEdge(2, 3, 1, 100)
	net := network.New(g, network.Catalog{N: 1})
	net.MustAddInstance(1, 1, 50, 100)
	net.MustAddInstance(2, 1, 10, 100) // cheapest
	net.MustAddInstance(3, 1, 30, 100)
	return &core.Problem{
		Net: net,
		SFC: sfc.DAGSFC{Layers: []sfc.Layer{{VNFs: []network.VNFID{1}}}},
		Src: 0, Dst: 3, Rate: 1, Size: 1,
	}
}

func randomProblem(rng *rand.Rand, nodes, kinds, sfcSize int) *core.Problem {
	cfg := netgen.Default()
	cfg.Nodes = nodes
	cfg.VNFKinds = kinds
	cfg.Connectivity = 4
	net := netgen.MustGenerate(cfg, rng)
	s := sfcgen.MustGenerate(sfcgen.Config{Size: sfcSize, LayerWidth: 3, VNFKinds: kinds}, rng)
	return &core.Problem{
		Net: net, SFC: s,
		Src: graph.NodeID(rng.Intn(nodes)), Dst: graph.NodeID(rng.Intn(nodes)),
		Rate: 1, Size: 1,
	}
}

func TestMINVPicksCheapestInstance(t *testing.T) {
	p := fixture()
	res, err := EmbedMINV(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solution.Layers[0].Nodes[0] != 2 {
		t.Fatalf("MINV picked node %d, want cheapest node 2", res.Solution.Layers[0].Nodes[0])
	}
	// Cost: f(1)@2 = 10, path 0->2 = 2, tail 2->3 = 1. Total 13.
	if res.Cost.Total() != 13 {
		t.Fatalf("MINV cost = %v, want 13", res.Cost.Total())
	}
}

func TestMINVDeterministic(t *testing.T) {
	p := randomProblem(rand.New(rand.NewSource(5)), 60, 6, 5)
	a, errA := EmbedMINV(p)
	b, errB := EmbedMINV(p)
	if (errA == nil) != (errB == nil) {
		t.Fatal("MINV determinism broken")
	}
	if errA == nil && a.Cost.Total() != b.Cost.Total() {
		t.Fatalf("MINV costs differ: %v vs %v", a.Cost.Total(), b.Cost.Total())
	}
}

func TestRANVUsesOnlyFeasibleHosts(t *testing.T) {
	p := fixture()
	rng := rand.New(rand.NewSource(1))
	seen := map[graph.NodeID]bool{}
	for i := 0; i < 50; i++ {
		q := fixture()
		res, err := EmbedRANV(q, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := core.Validate(q, res.Solution); err != nil {
			t.Fatal(err)
		}
		seen[res.Solution.Layers[0].Nodes[0]] = true
	}
	// All three hosts should appear over 50 draws.
	if len(seen) != 3 {
		t.Fatalf("RANV host diversity = %v, want all of {1,2,3}", seen)
	}
	_ = p
}

func TestRANVRespectsCapacity(t *testing.T) {
	p := fixture()
	ledger := network.NewLedger(p.Net)
	// Exhaust nodes 1 and 3: only node 2 remains feasible.
	if err := ledger.ReserveInstance(1, 1, 100); err != nil {
		t.Fatal(err)
	}
	if err := ledger.ReserveInstance(3, 1, 100); err != nil {
		t.Fatal(err)
	}
	p.Ledger = ledger
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10; i++ {
		res, err := EmbedRANV(p, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Solution.Layers[0].Nodes[0] != 2 {
			t.Fatalf("RANV picked exhausted node %d", res.Solution.Layers[0].Nodes[0])
		}
	}
}

func TestBenchmarksFailWhenNoInstanceFeasible(t *testing.T) {
	p := fixture()
	ledger := network.NewLedger(p.Net)
	for _, v := range []graph.NodeID{1, 2, 3} {
		if err := ledger.ReserveInstance(v, 1, 100); err != nil {
			t.Fatal(err)
		}
	}
	p.Ledger = ledger
	if _, err := EmbedMINV(p); !errors.Is(err, core.ErrNoEmbedding) {
		t.Fatalf("MINV err = %v, want ErrNoEmbedding", err)
	}
	if _, err := EmbedRANV(p, rand.New(rand.NewSource(3))); !errors.Is(err, core.ErrNoEmbedding) {
		t.Fatalf("RANV err = %v, want ErrNoEmbedding", err)
	}
}

func TestBenchmarksHandleParallelLayers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := randomProblem(rng, 50, 6, 5) // layers [3,2]: mergers needed
	res, err := EmbedMINV(p)
	if err != nil {
		t.Skipf("instance infeasible for MINV: %v", err)
	}
	if err := core.Validate(p, res.Solution); err != nil {
		t.Fatal(err)
	}
	if len(res.Solution.Layers[0].InnerPaths) != 3 {
		t.Fatalf("first layer inner paths = %d, want 3", len(res.Solution.Layers[0].InnerPaths))
	}
}

func TestBenchmarkSolutionsAlwaysValidProperty(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 40, 6, 1+rng.Intn(6))
		if res, err := EmbedMINV(p); err == nil {
			if err := core.Validate(p, res.Solution); err != nil {
				t.Fatalf("seed %d: MINV invalid: %v", seed, err)
			}
		} else if !errors.Is(err, core.ErrNoEmbedding) {
			t.Fatalf("seed %d: MINV unexpected error %v", seed, err)
		}
		if res, err := EmbedRANV(p, rng); err == nil {
			if err := core.Validate(p, res.Solution); err != nil {
				t.Fatalf("seed %d: RANV invalid: %v", seed, err)
			}
		} else if !errors.Is(err, core.ErrNoEmbedding) {
			t.Fatalf("seed %d: RANV unexpected error %v", seed, err)
		}
	}
}

func TestMINVInvalidProblemRejected(t *testing.T) {
	p := fixture()
	p.Rate = -1
	if _, err := EmbedMINV(p); err == nil {
		t.Fatal("invalid problem accepted")
	}
}
