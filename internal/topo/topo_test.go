package topo

import (
	"math/rand"
	"testing"

	"dagsfc/internal/graph"
)

func unitPrice() float64 { return 1 }

func TestRing(t *testing.T) {
	g, err := Ring(6, unitPrice, 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 6 || g.NumEdges() != 6 {
		t.Fatalf("ring: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if !g.Connected() {
		t.Fatal("ring disconnected")
	}
	for v := 0; v < 6; v++ {
		if g.Degree(graph.NodeID(v)) != 2 {
			t.Fatalf("ring degree %d at %d", g.Degree(graph.NodeID(v)), v)
		}
	}
	if _, err := Ring(2, unitPrice, 10); err == nil {
		t.Fatal("tiny ring accepted")
	}
}

func TestGrid(t *testing.T) {
	g, err := Grid(3, 4, unitPrice, 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 12 {
		t.Fatalf("grid nodes = %d", g.NumNodes())
	}
	// Edges: 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8 = 17.
	if g.NumEdges() != 17 {
		t.Fatalf("grid edges = %d, want 17", g.NumEdges())
	}
	if !g.Connected() {
		t.Fatal("grid disconnected")
	}
	if _, err := Grid(1, 1, unitPrice, 10); err == nil {
		t.Fatal("1x1 grid accepted")
	}
}

func TestTorus(t *testing.T) {
	g, err := Torus(3, 3, unitPrice, 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 9 || g.NumEdges() != 18 {
		t.Fatalf("torus: %d nodes %d edges, want 9/18", g.NumNodes(), g.NumEdges())
	}
	for v := 0; v < 9; v++ {
		if g.Degree(graph.NodeID(v)) != 4 {
			t.Fatalf("torus degree %d at node %d, want 4", g.Degree(graph.NodeID(v)), v)
		}
	}
	if _, err := Torus(2, 3, unitPrice, 10); err == nil {
		t.Fatal("2x3 torus accepted (would create parallel wrap links)")
	}
}

func TestFatTree(t *testing.T) {
	g, err := FatTree(4, unitPrice, 10)
	if err != nil {
		t.Fatal(err)
	}
	// k=4: 4 cores + 4 pods x 4 switches = 20 nodes; edges: per pod
	// 2 agg x (2 core + 2 edge) = 8, x4 pods = 32.
	if g.NumNodes() != 20 || g.NumEdges() != 32 {
		t.Fatalf("fat-tree: %d nodes %d edges, want 20/32", g.NumNodes(), g.NumEdges())
	}
	if !g.Connected() {
		t.Fatal("fat-tree disconnected")
	}
	// Core switches have degree k (one link per pod).
	for c := 0; c < 4; c++ {
		if g.Degree(graph.NodeID(c)) != 4 {
			t.Fatalf("core %d degree %d, want 4", c, g.Degree(graph.NodeID(c)))
		}
	}
	if _, err := FatTree(3, unitPrice, 10); err == nil {
		t.Fatal("odd arity accepted")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := BarabasiAlbert(50, 2, rng, unitPrice, 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 50 {
		t.Fatalf("ba nodes = %d", g.NumNodes())
	}
	// Seed clique C(3,2)=3 edges + 47 nodes x 2 = 97.
	if g.NumEdges() != 97 {
		t.Fatalf("ba edges = %d, want 97", g.NumEdges())
	}
	if !g.Connected() {
		t.Fatal("ba disconnected")
	}
	// Scale-free skew: the max degree should far exceed the mean.
	maxDeg := 0
	for v := 0; v < 50; v++ {
		if d := g.Degree(graph.NodeID(v)); d > maxDeg {
			maxDeg = d
		}
	}
	if float64(maxDeg) < 2*g.AvgDegree() {
		t.Fatalf("no preferential attachment skew: max %d avg %.1f", maxDeg, g.AvgDegree())
	}
	if _, err := BarabasiAlbert(3, 3, rng, unitPrice, 10); err == nil {
		t.Fatal("n <= m accepted")
	}
}

func TestWaxman(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, err := Waxman(60, 0.4, 0.3, rng, unitPrice, 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 60 || !g.Connected() {
		t.Fatalf("waxman: %d nodes connected=%v", g.NumNodes(), g.Connected())
	}
	if g.NumEdges() < 59 {
		t.Fatal("waxman lost its spanning backbone")
	}
	if _, err := Waxman(1, 0.4, 0.3, rng, unitPrice, 10); err == nil {
		t.Fatal("1-node waxman accepted")
	}
	if _, err := Waxman(10, 0, 0.3, rng, unitPrice, 10); err == nil {
		t.Fatal("alpha=0 accepted")
	}
}

func TestBuildersUsePriceSampler(t *testing.T) {
	calls := 0
	price := func() float64 { calls++; return float64(calls) }
	g, err := Ring(4, price, 10)
	if err != nil {
		t.Fatal(err)
	}
	if calls != g.NumEdges() {
		t.Fatalf("price sampler called %d times for %d edges", calls, g.NumEdges())
	}
	seen := map[float64]bool{}
	for _, e := range g.Edges() {
		seen[e.Price] = true
	}
	if len(seen) != g.NumEdges() {
		t.Fatal("sampled prices not applied per edge")
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := BarabasiAlbert(30, 2, rand.New(rand.NewSource(9)), unitPrice, 10)
	b, _ := BarabasiAlbert(30, 2, rand.New(rand.NewSource(9)), unitPrice, 10)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("BA not deterministic")
	}
	for i, e := range a.Edges() {
		f := b.Edge(graph.EdgeID(i))
		if e.A != f.A || e.B != f.B {
			t.Fatal("BA edge streams diverge")
		}
	}
}
