// Package topo builds the structured and random topologies used by the
// robustness experiments: ring, 2-D grid and torus, k-ary fat-tree,
// Barabási–Albert scale-free, and Waxman random geometric graphs. The
// paper evaluates only on uniform random graphs; these generators check
// that the algorithms' behaviour carries over to network shapes operators
// actually deploy.
//
// Builders take a link-price sampler (see netgen.Config.LinkPricer) and a
// uniform link capacity, and return a connected graph.
package topo

import (
	"fmt"
	"math"
	"math/rand"

	"dagsfc/internal/graph"
)

// Ring returns the n-cycle.
func Ring(n int, price func() float64, capacity float64) (*graph.Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("topo: ring needs >= 3 nodes, have %d", n)
	}
	g := graph.New(n)
	for v := 0; v < n; v++ {
		g.MustAddEdge(graph.NodeID(v), graph.NodeID((v+1)%n), price(), capacity)
	}
	return g, nil
}

// Grid returns the rows x cols mesh.
func Grid(rows, cols int, price func() float64, capacity float64) (*graph.Graph, error) {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		return nil, fmt.Errorf("topo: grid %dx%d too small", rows, cols)
	}
	g := graph.New(rows * cols)
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.MustAddEdge(id(r, c), id(r, c+1), price(), capacity)
			}
			if r+1 < rows {
				g.MustAddEdge(id(r, c), id(r+1, c), price(), capacity)
			}
		}
	}
	return g, nil
}

// Torus returns the rows x cols mesh with wraparound links.
func Torus(rows, cols int, price func() float64, capacity float64) (*graph.Graph, error) {
	if rows < 3 || cols < 3 {
		return nil, fmt.Errorf("topo: torus needs >= 3x3, have %dx%d", rows, cols)
	}
	g := graph.New(rows * cols)
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.MustAddEdge(id(r, c), id(r, (c+1)%cols), price(), capacity)
			g.MustAddEdge(id(r, c), id((r+1)%rows, c), price(), capacity)
		}
	}
	return g, nil
}

// FatTree returns the switch-level k-ary fat-tree (k even): (k/2)^2 core
// switches, k pods of k/2 aggregation and k/2 edge switches each —
// 5k^2/4 nodes in total. Node IDs: cores first, then per pod aggregation
// then edge switches.
func FatTree(k int, price func() float64, capacity float64) (*graph.Graph, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topo: fat-tree arity must be even and >= 2, have %d", k)
	}
	half := k / 2
	cores := half * half
	nodes := cores + k*k // k pods x (half agg + half edge)
	g := graph.New(nodes)
	coreID := func(i int) graph.NodeID { return graph.NodeID(i) }
	aggID := func(pod, i int) graph.NodeID { return graph.NodeID(cores + pod*k + i) }
	edgeID := func(pod, i int) graph.NodeID { return graph.NodeID(cores + pod*k + half + i) }
	for pod := 0; pod < k; pod++ {
		for a := 0; a < half; a++ {
			// Each aggregation switch connects to half core switches.
			for c := 0; c < half; c++ {
				g.MustAddEdge(aggID(pod, a), coreID(a*half+c), price(), capacity)
			}
			// And to every edge switch in its pod.
			for e := 0; e < half; e++ {
				g.MustAddEdge(aggID(pod, a), edgeID(pod, e), price(), capacity)
			}
		}
	}
	return g, nil
}

// BarabasiAlbert returns a scale-free graph by preferential attachment:
// each new node attaches m edges to existing nodes with probability
// proportional to degree.
func BarabasiAlbert(n, m int, rng *rand.Rand, price func() float64, capacity float64) (*graph.Graph, error) {
	if m < 1 || n < m+1 {
		return nil, fmt.Errorf("topo: barabasi-albert needs n > m >= 1, have n=%d m=%d", n, m)
	}
	g := graph.New(n)
	// Seed: a small clique over the first m+1 nodes.
	var targets []graph.NodeID // endpoint multiset: sampling ∝ degree
	for a := 0; a <= m; a++ {
		for b := a + 1; b <= m; b++ {
			g.MustAddEdge(graph.NodeID(a), graph.NodeID(b), price(), capacity)
			targets = append(targets, graph.NodeID(a), graph.NodeID(b))
		}
	}
	for v := m + 1; v < n; v++ {
		chosen := map[graph.NodeID]bool{}
		for len(chosen) < m {
			chosen[targets[rng.Intn(len(targets))]] = true
		}
		// Insert edges in node order: map iteration would make the edge
		// stream (and thus downstream price sampling) nondeterministic.
		for u := graph.NodeID(0); int(u) < v; u++ {
			if chosen[u] {
				g.MustAddEdge(graph.NodeID(v), u, price(), capacity)
				targets = append(targets, u, graph.NodeID(v))
			}
		}
	}
	return g, nil
}

// Waxman returns a random geometric graph: nodes placed uniformly in the
// unit square, each pair linked with probability
// alpha * exp(-dist / (beta * sqrt(2))). A random spanning tree guarantees
// connectivity regardless of the draw.
func Waxman(n int, alpha, beta float64, rng *rand.Rand, price func() float64, capacity float64) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topo: waxman needs >= 2 nodes, have %d", n)
	}
	if alpha <= 0 || alpha > 1 || beta <= 0 {
		return nil, fmt.Errorf("topo: waxman parameters alpha=%v beta=%v invalid", alpha, beta)
	}
	type pt struct{ x, y float64 }
	pts := make([]pt, n)
	for i := range pts {
		pts[i] = pt{rng.Float64(), rng.Float64()}
	}
	g := graph.New(n)
	// Connectivity backbone.
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(graph.NodeID(perm[i]), graph.NodeID(perm[rng.Intn(i)]), price(), capacity)
	}
	maxDist := math.Sqrt2
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if g.HasEdge(graph.NodeID(a), graph.NodeID(b)) {
				continue
			}
			d := math.Hypot(pts[a].x-pts[b].x, pts[a].y-pts[b].y)
			if rng.Float64() < alpha*math.Exp(-d/(beta*maxDist)) {
				g.MustAddEdge(graph.NodeID(a), graph.NodeID(b), price(), capacity)
			}
		}
	}
	return g, nil
}
