package dagsfc

import (
	"strings"
	"testing"
)

// FuzzParseSFC checks the CLI parser never panics and that everything it
// accepts survives a format/parse round trip.
func FuzzParseSFC(f *testing.F) {
	for _, seed := range []string{"", "1", "1;2,3;4", "1,2,3", " 7 ; 8 ", "0", "a;b", "1;;2", "9999999999"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		s, err := ParseSFC(input)
		if err != nil {
			return
		}
		if err := s.Validate(Catalog{N: 1 << 30}); err != nil {
			t.Skip() // duplicates within a layer parse fine but don't validate
		}
		back, err := ParseSFC(FormatSFC(s))
		if err != nil {
			t.Fatalf("accepted %q but rejected its own formatting: %v", input, err)
		}
		if back.String() != s.String() {
			t.Fatalf("round trip changed %q: %v vs %v", input, back, s)
		}
	})
}

// FuzzReadNetworkJSON checks the network decoder never panics and that
// everything it accepts re-encodes and decodes stably.
func FuzzReadNetworkJSON(f *testing.F) {
	var good strings.Builder
	net := demoNetwork()
	if err := WriteNetworkJSON(&good, net); err != nil {
		f.Fatal(err)
	}
	f.Add(good.String())
	f.Add(`{}`)
	f.Add(`{"nodes":2,"vnf_kinds":1}`)
	f.Add(`{"nodes":-1}`)
	f.Add(`not json`)
	f.Fuzz(func(t *testing.T, input string) {
		n1, err := ReadNetworkJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		var out strings.Builder
		if err := WriteNetworkJSON(&out, n1); err != nil {
			t.Fatalf("accepted input failed to re-encode: %v", err)
		}
		n2, err := ReadNetworkJSON(strings.NewReader(out.String()))
		if err != nil {
			t.Fatalf("re-encoded network rejected: %v", err)
		}
		if n1.G.NumNodes() != n2.G.NumNodes() || n1.NumInstances() != n2.NumInstances() ||
			n1.G.NumEdges() != n2.G.NumEdges() {
			t.Fatal("round trip unstable")
		}
	})
}

// FuzzReadSolutionJSON checks the solution decoder against a fixed
// network: no panics, and accepted inputs re-encode stably.
func FuzzReadSolutionJSON(f *testing.F) {
	net := demoNetwork()
	s, _ := ParseSFC("1;2,3")
	p := &Problem{Net: net, SFC: s, Src: 0, Dst: 4, Rate: 1, Size: 1}
	res, err := EmbedMBBE(p)
	if err != nil {
		f.Fatal(err)
	}
	var good strings.Builder
	if err := WriteSolutionJSON(&good, p, res.Solution); err != nil {
		f.Fatal(err)
	}
	f.Add(good.String())
	f.Add(`{"layers":[],"tail_path":[0]}`)
	f.Add(`{"layers":[],"tail_path":[0,9]}`)
	f.Add(`garbage`)
	f.Fuzz(func(t *testing.T, input string) {
		q := &Problem{Net: net, SFC: s, Src: 0, Dst: 4, Rate: 1, Size: 1}
		sol, err := ReadSolutionJSON(strings.NewReader(input), q)
		if err != nil {
			return
		}
		// Accepted solutions may still be infeasible; Validate must not
		// panic either way.
		_ = Validate(q, sol)
	})
}
