module dagsfc

go 1.22
