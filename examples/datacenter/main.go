// Datacenter: embeds hybrid SFCs inside a k=8 fat-tree (the standard
// datacenter fabric) populated with the paper's VNF market, and compares
// MBBE against the MINV baseline there — checking the paper's claims hold
// beyond uniform random topologies. Also renders one embedding as
// Graphviz DOT on a small k=4 fabric.
//
// Run with: go run ./examples/datacenter
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"dagsfc"
	"dagsfc/internal/netgen"
	"dagsfc/internal/topo"
	"dagsfc/internal/viz"
)

func main() {
	rng := rand.New(rand.NewSource(12))

	// k=8 fat-tree: 16 cores + 8 pods x 8 switches = 80 nodes.
	cfg := dagsfc.DefaultNetConfig()
	cfg.VNFKinds = dagsfc.NumStockVNFs
	fabric, err := topo.FatTree(8, cfg.LinkPricer(rng), cfg.LinkCapacity)
	if err != nil {
		log.Fatal(err)
	}
	net, err := netgen.Populate(fabric, cfg, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k=8 fat-tree: %d switches, %d links, %d VNF instances\n\n",
		net.G.NumNodes(), net.G.NumEdges(), net.NumInstances())

	// Traffic between two edge switches in different pods must traverse
	// the chain firewall -> {ids|monitor} -> {nat|vpn}.
	chain := []dagsfc.VNFID{dagsfc.Firewall, dagsfc.IDS, dagsfc.Monitor, dagsfc.NAT, dagsfc.VPN}
	hybrid := dagsfc.ChainToDAG(chain, dagsfc.StockRules(), 3)
	fmt.Println("hybrid SFC:", hybrid.String())

	var mbbeTotal, minvTotal float64
	flows := 0
	for trial := 0; trial < 20; trial++ {
		src := dagsfc.NodeID(16 + rng.Intn(64)) // a pod switch
		dst := dagsfc.NodeID(16 + rng.Intn(64))
		p := &dagsfc.Problem{Net: net, SFC: hybrid, Src: src, Dst: dst, Rate: 1, Size: 1}
		a, errA := dagsfc.EmbedMBBE(p)
		q := &dagsfc.Problem{Net: net, SFC: hybrid, Src: src, Dst: dst, Rate: 1, Size: 1}
		b, errB := dagsfc.EmbedMINV(q)
		if errA != nil || errB != nil {
			continue
		}
		mbbeTotal += a.Cost.Total()
		minvTotal += b.Cost.Total()
		flows++
	}
	if flows == 0 {
		log.Fatal("no feasible flows")
	}
	fmt.Printf("over %d inter-pod flows: MBBE avg %.1f vs MINV avg %.1f (%.0f%% cheaper)\n\n",
		flows, mbbeTotal/float64(flows), minvTotal/float64(flows),
		100*(1-mbbeTotal/minvTotal))

	// Render a small k=4 instance for inspection.
	small, err := topo.FatTree(4, cfg.LinkPricer(rng), cfg.LinkCapacity)
	if err != nil {
		log.Fatal(err)
	}
	smallNet, err := netgen.Populate(small, cfg, rng)
	if err != nil {
		log.Fatal(err)
	}
	p := &dagsfc.Problem{Net: smallNet, SFC: hybrid, Src: 4, Dst: 19, Rate: 1, Size: 1}
	res, err := dagsfc.EmbedMBBE(p)
	if err != nil {
		log.Fatal(err)
	}
	out := "fattree-embedding.dot"
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := viz.WriteDOT(f, smallNet, viz.Options{Solution: res.Solution, Problem: p}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k=4 embedding (cost %.1f) written to %s — render with `dot -Tpng`\n",
		res.Cost.Total(), out)
}
