// Securitychain: the enterprise scenario from the paper's introduction.
// An operator needs traffic to traverse firewall -> IDS -> monitor -> NAT
// -> VPN. The read/write analysis of those middleboxes (after NFP) finds
// which neighbors can run in parallel; the chain is transformed to a
// DAG-SFC, embedded over a 200-node cloud network, and compared against
// the sequential embedding on both cost and end-to-end delay.
//
// Run with: go run ./examples/securitychain
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dagsfc"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// A 200-node cloud network offering the eight stock categories.
	cfg := dagsfc.DefaultNetConfig()
	cfg.Nodes = 200
	cfg.VNFKinds = dagsfc.NumStockVNFs
	net, err := dagsfc.GenerateNetwork(cfg, rng)
	if err != nil {
		log.Fatal(err)
	}

	chain := []dagsfc.VNFID{
		dagsfc.Firewall, dagsfc.IDS, dagsfc.Monitor, dagsfc.NAT, dagsfc.VPN,
	}
	rules := dagsfc.StockRules()
	fmt.Print("service chain: ")
	for i, f := range chain {
		if i > 0 {
			fmt.Print(" -> ")
		}
		fmt.Print(dagsfc.StockNames[f])
	}
	fmt.Println()

	hybrid := dagsfc.ChainToDAG(chain, rules, 3)
	fmt.Println("hybrid DAG-SFC:", hybrid.String())
	fmt.Printf("(the firewall may drop traffic, so it stays serial; IDS and "+
		"monitor only read; NAT writes headers while the VPN rewrites the "+
		"payload — %d layers instead of %d)\n\n", hybrid.Omega(), len(chain))

	src, dst := dagsfc.NodeID(0), dagsfc.NodeID(150)
	hp := &dagsfc.Problem{Net: net, SFC: hybrid, Src: src, Dst: dst, Rate: 1, Size: 1}
	hybridRes, err := dagsfc.EmbedMBBE(hp)
	if err != nil {
		log.Fatal(err)
	}
	sp := &dagsfc.Problem{Net: net, SFC: dagsfc.FromChain(chain), Src: src, Dst: dst, Rate: 1, Size: 1}
	seqRes, err := dagsfc.EmbedMBBE(sp)
	if err != nil {
		log.Fatal(err)
	}

	params := dagsfc.DefaultDelayParams()
	hd := dagsfc.EvaluateDelay(hp, hybridRes.Solution, params)
	sd := dagsfc.EvaluateDelay(sp, seqRes.Solution, params)

	fmt.Printf("%-12s %10s %10s\n", "", "cost", "delay")
	fmt.Printf("%-12s %10.1f %10.2f\n", "hybrid", hybridRes.Cost.Total(), hd)
	fmt.Printf("%-12s %10.1f %10.2f\n", "sequential", seqRes.Cost.Total(), sd)
	fmt.Printf("\nhybrid embedding cuts end-to-end delay by %.0f%%\n", 100*(1-hd/sd))

	// And the cost advantage over the naive baselines on the hybrid form:
	if minv, err := dagsfc.EmbedMINV(&dagsfc.Problem{Net: net, SFC: hybrid, Src: src, Dst: dst, Rate: 1, Size: 1}); err == nil {
		fmt.Printf("MBBE is %.0f%% cheaper than the MINV baseline on the hybrid SFC\n",
			100*(1-hybridRes.Cost.Total()/minv.Cost.Total()))
	}
}
