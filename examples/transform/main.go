// Transform: demonstrates the DAG abstraction of §3.1 — how sequential
// chains become standardized DAG-SFCs, both via the read/write-conflict
// analysis of NF pairs and via an explicitly supplied dependency DAG.
//
// Run with: go run ./examples/transform
package main

import (
	"fmt"
	"log"

	"dagsfc"
)

func main() {
	rules := dagsfc.StockRules()

	// 1. Pairwise parallelizability of the stock categories.
	cats := []dagsfc.VNFID{
		dagsfc.Firewall, dagsfc.IDS, dagsfc.NAT, dagsfc.LoadBalancer,
		dagsfc.Monitor, dagsfc.VPN, dagsfc.WANOptimizer, dagsfc.TrafficShaper,
	}
	fmt.Println("pairwise parallelizability (stock profiles):")
	fmt.Printf("%-15s", "")
	for _, b := range cats {
		fmt.Printf("%-4d", b)
	}
	fmt.Println()
	for _, a := range cats {
		fmt.Printf("%-15s", dagsfc.StockNames[a])
		for _, b := range cats {
			mark := "."
			if rules.CanParallelize(a, b) {
				mark = "P"
			}
			fmt.Printf("%-4s", mark)
		}
		fmt.Println()
	}
	frac := rules.ParallelizableFraction(cats)
	fmt.Printf("\n%.1f%% of category pairs can parallelize "+
		"(NFP measured 53.8%% in enterprise networks)\n\n", 100*frac)

	// 2. Chain -> DAG-SFC transformation (Fig. 2 of the paper).
	chains := [][]dagsfc.VNFID{
		{dagsfc.IDS, dagsfc.Monitor, dagsfc.TrafficShaper},
		{dagsfc.Firewall, dagsfc.IDS, dagsfc.Monitor, dagsfc.NAT, dagsfc.VPN},
		{dagsfc.NAT, dagsfc.LoadBalancer, dagsfc.VPN, dagsfc.WANOptimizer},
	}
	for _, chain := range chains {
		hybrid := dagsfc.ChainToDAG(chain, rules, 3)
		fmt.Printf("chain %v\n  -> %s (%d layers, max width %d)\n",
			chain, hybrid.String(), hybrid.Omega(), hybrid.MaxWidth())
	}

	// 3. An explicit dependency DAG, levelized to the standardized form.
	// Position indices:   0:firewall  1:ids  2:monitor  3:vpn  4:shaper
	d := dagsfc.DAG{
		Nodes: []dagsfc.VNFID{dagsfc.Firewall, dagsfc.IDS, dagsfc.Monitor, dagsfc.VPN, dagsfc.TrafficShaper},
		Edges: [][2]int{
			{0, 1}, {0, 2}, // firewall before both analyzers
			{1, 3}, {2, 3}, // vpn after both
			{3, 4}, // shaper last
		},
	}
	s, err := d.Levelize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndependency DAG levelized: %s\n", s.String())
}
