// Onlineflows: an operator admits a stream of flow requests onto a
// capacity-constrained cloud network. Each accepted embedding commits its
// bandwidth and processing demands, so later flows see the depleted
// real-time network. The example compares MBBE against the MINV baseline
// on acceptance ratio and total rental cost over the same request stream.
//
// Run with: go run ./examples/onlineflows
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dagsfc"
	"dagsfc/internal/online"
	"dagsfc/internal/sfcgen"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// A deliberately tight network: each instance serves at most 4 unit
	// flows and links carry 30.
	cfg := dagsfc.DefaultNetConfig()
	cfg.Nodes = 80
	cfg.VNFKinds = 6
	cfg.DeployRatio = 0.3
	cfg.InstanceCapacity = 4
	cfg.LinkCapacity = 30
	net, err := dagsfc.GenerateNetwork(cfg, rng)
	if err != nil {
		log.Fatal(err)
	}

	reqs := online.RandomRequests(net,
		sfcgen.Config{Size: 4, LayerWidth: 3, VNFKinds: 6}, 120, 1, 1, rng)

	run := func(name string, embed func(*dagsfc.Problem) (*dagsfc.Result, error)) online.Report {
		report, err := online.Run(net, reqs, embed)
		if err != nil {
			log.Fatal(err)
		}
		avg := 0.0
		if report.Accepted > 0 {
			avg = report.TotalCost / float64(report.Accepted)
		}
		fmt.Printf("%-6s accepted %3d/%d (%.0f%%)   total cost %8.0f   avg/flow %7.1f   commit failures %d\n",
			name, report.Accepted, len(reqs), 100*report.AcceptanceRatio(),
			report.TotalCost, avg, report.CommitFailures)
		return report
	}

	fmt.Printf("admitting %d flow requests (size-4 SFCs) on an %d-node network\n\n", len(reqs), cfg.Nodes)
	mbbe := run("MBBE", dagsfc.EmbedMBBE)
	minv := run("MINV", dagsfc.EmbedMINV)

	if mbbe.Accepted > 0 && minv.Accepted > 0 {
		mAvg := mbbe.TotalCost / float64(mbbe.Accepted)
		nAvg := minv.TotalCost / float64(minv.Accepted)
		fmt.Printf("\nper accepted flow, MBBE spends %.0f%% less than MINV\n", 100*(1-mAvg/nAvg))
	}
}
