// Delaybudget: delay-bounded embedding. The operator wants the cheapest
// embedding whose end-to-end latency stays under a budget. The example
// builds a network where the cheap VNFs sit far from the flow's route,
// embeds a chain unbounded (cheap but slow), then under progressively
// tighter budgets. Every returned embedding provably meets its budget;
// "infeasible for this search" rows show the beam search's honest limit —
// feasibility is not strictly monotone in the budget, because the search
// stays cost-ordered and only guarantees one fast candidate per pruning
// point (see core.Options.MaxDelay).
//
// Run with: go run ./examples/delaybudget
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	"dagsfc"
)

func main() {
	rng := rand.New(rand.NewSource(21))

	// Wide price dispersion + meaningful propagation delay create the
	// cost/latency tension.
	cfg := dagsfc.DefaultNetConfig()
	cfg.Nodes = 150
	cfg.VNFKinds = 6
	cfg.VNFPriceFluct = 0.5
	net, err := dagsfc.GenerateNetwork(cfg, rng)
	if err != nil {
		log.Fatal(err)
	}
	s, err := dagsfc.GenerateSFC(dagsfc.SFCConfig{Size: 5, LayerWidth: 3, VNFKinds: 6}, rng)
	if err != nil {
		log.Fatal(err)
	}
	params := dagsfc.DelayParams{DefaultProcDelay: 1, MergerDelay: 0.1, HopDelay: 0.5}
	problem := func() *dagsfc.Problem {
		return &dagsfc.Problem{Net: net, SFC: s, Src: 3, Dst: 120, Rate: 1, Size: 1}
	}

	p := problem()
	unbounded, err := dagsfc.EmbedMBBE(p)
	if err != nil {
		log.Fatal(err)
	}
	d0 := dagsfc.EvaluateDelay(p, unbounded.Solution, params)
	fmt.Printf("SFC %s\n", s.String())
	fmt.Printf("%-12s cost %8.1f   delay %6.2f\n", "unbounded", unbounded.Cost.Total(), d0)

	for _, factor := range []float64{0.95, 0.9, 0.8, 0.7} {
		opts := dagsfc.MBBEOptions()
		opts.MaxDelay = factor * d0
		opts.Delay = params
		q := problem()
		res, err := dagsfc.Embed(q, opts)
		label := fmt.Sprintf("budget %.2f", opts.MaxDelay)
		if errors.Is(err, dagsfc.ErrNoEmbedding) {
			fmt.Printf("%-12s infeasible for this search\n", label)
			continue
		}
		if err != nil {
			log.Fatal(err)
		}
		d := dagsfc.EvaluateDelay(q, res.Solution, params)
		fmt.Printf("%-12s cost %8.1f   delay %6.2f (meets budget: %v)\n",
			label, res.Cost.Total(), d, d <= opts.MaxDelay)
	}
}
