// Quickstart: build a small priced cloud network by hand, embed a hybrid
// SFC with MBBE, and inspect the solution.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dagsfc"
)

func main() {
	// A six-node metro ring. Prices are per unit of traffic rate;
	// capacities are in rate units. Links are expensive relative to the
	// VNF price differences, so *where* instances sit matters.
	g := dagsfc.NewGraph(6)
	ring := [][2]dagsfc.NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}}
	for _, e := range ring {
		g.MustAddEdge(e[0], e[1], 10.0, 100)
	}

	// Three VNF categories plus the merger (catalog N+1 = 4). Third-party
	// providers deploy instances at different prices on different nodes:
	// node 1 hosts a slightly pricier copy of everything, while the
	// cheapest copies are scattered around the ring.
	net := dagsfc.NewNetwork(g, dagsfc.Catalog{N: 3})
	net.MustAddInstance(1, 1, 40, 50)
	net.MustAddInstance(4, 1, 35, 50) // cheapest f(1), far away
	net.MustAddInstance(1, 2, 42, 50)
	net.MustAddInstance(5, 2, 38, 50) // cheapest f(2), far away
	net.MustAddInstance(1, 3, 30, 50)
	net.MustAddInstance(2, 3, 26, 50)
	net.MustAddInstance(1, dagsfc.VNFID(4), 6, 50) // merger
	net.MustAddInstance(3, dagsfc.VNFID(4), 5, 50)

	// The hybrid SFC [f1] -> [f2 | f3 +merger]: f(2) and f(3) process the
	// flow in parallel and a merger integrates their results.
	s, err := dagsfc.ParseSFC("1;2,3")
	if err != nil {
		log.Fatal(err)
	}

	p := &dagsfc.Problem{
		Net: net, SFC: s,
		Src: 0, Dst: 2,
		Rate: 1, Size: 1,
	}
	res, err := dagsfc.EmbedMBBE(p)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("SFC:     ", s.String())
	fmt.Println("solution:", res.Solution.String())
	fmt.Printf("cost:     %.1f total = %.1f VNF rental + %.1f links\n",
		res.Cost.Total(), res.Cost.VNFCost, res.Cost.LinkCost)
	for key, uses := range res.Cost.InstanceUse {
		fmt.Printf("  rents f(%d) on node %d (x%d)\n", key.VNF, key.Node, uses)
	}

	// Compare against the naive baseline: MINV chases the individually
	// cheapest instances around the ring and pays for it in link cost.
	minv, err := dagsfc.EmbedMINV(&dagsfc.Problem{Net: net, SFC: s, Src: 0, Dst: 2, Rate: 1, Size: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MINV baseline cost: %.1f (MBBE saves %.0f%%)\n",
		minv.Cost.Total(), 100*(1-res.Cost.Total()/minv.Cost.Total()))
}
