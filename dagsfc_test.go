package dagsfc

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// demoNetwork builds a small hand-wired network through the public API.
func demoNetwork() *Network {
	g := NewGraph(5)
	g.MustAddEdge(0, 1, 1, 100)
	g.MustAddEdge(1, 2, 1, 100)
	g.MustAddEdge(2, 3, 1, 100)
	g.MustAddEdge(3, 4, 1, 100)
	g.MustAddEdge(1, 3, 2, 100)
	net := NewNetwork(g, Catalog{N: 3})
	net.MustAddInstance(1, 1, 10, 50)
	net.MustAddInstance(2, 2, 10, 50)
	net.MustAddInstance(3, 3, 10, 50)
	net.MustAddInstance(2, VNFID(4), 2, 50) // merger
	return net
}

func TestPublicAPIEndToEnd(t *testing.T) {
	net := demoNetwork()
	s, err := ParseSFC("1;2,3")
	if err != nil {
		t.Fatal(err)
	}
	p := &Problem{Net: net, SFC: s, Src: 0, Dst: 4, Rate: 1, Size: 1}
	res, err := EmbedMBBE(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(p, res.Solution); err != nil {
		t.Fatal(err)
	}
	cb, err := ComputeCost(p, res.Solution)
	if err != nil {
		t.Fatal(err)
	}
	if cb.Total() != res.Cost.Total() {
		t.Fatal("facade cost mismatch")
	}
	if _, err := EmbedBBE(p); err != nil {
		t.Fatal(err)
	}
	if _, err := EmbedMINV(p); err != nil {
		t.Fatal(err)
	}
	if _, err := EmbedRANV(p, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	if _, err := EmbedExact(p, ExactLimits{}); err != nil {
		t.Fatal(err)
	}
	ip, err := EmbedILP(p, ILPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ip.Cost.Total() > res.Cost.Total()+1e-9 {
		t.Fatalf("ILP %v worse than MBBE %v", ip.Cost.Total(), res.Cost.Total())
	}
	if _, err := EmbedAnneal(p, rand.New(rand.NewSource(2)), AnnealOptions{Iterations: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPublicGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := DefaultNetConfig()
	cfg.Nodes = 30
	cfg.VNFKinds = 6
	net, err := GenerateNetwork(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	s, err := GenerateSFC(SFCConfig{Size: 4, LayerWidth: 3, VNFKinds: 6}, rng)
	if err != nil {
		t.Fatal(err)
	}
	p := &Problem{Net: net, SFC: s, Src: 0, Dst: 5, Rate: 1, Size: 1}
	if _, err := EmbedMBBE(p); err != nil && !errors.Is(err, ErrNoEmbedding) {
		t.Fatal(err)
	}
}

func TestChainToDAGFacade(t *testing.T) {
	chain := []VNFID{Firewall, IDS, Monitor, NAT}
	hybrid := ChainToDAG(chain, StockRules(), 3)
	if hybrid.Size() != 4 {
		t.Fatalf("size = %d", hybrid.Size())
	}
	if hybrid.Omega() >= len(chain) {
		t.Fatalf("no parallelism extracted: %v", hybrid)
	}
	seq := FromChain(chain)
	if seq.Omega() != 4 || seq.MaxWidth() != 1 {
		t.Fatalf("FromChain = %v", seq)
	}
}

func TestDelayFacade(t *testing.T) {
	net := demoNetwork()
	s, _ := ParseSFC("1;2,3")
	p := &Problem{Net: net, SFC: s, Src: 0, Dst: 4, Rate: 1, Size: 1}
	res, err := EmbedMBBE(p)
	if err != nil {
		t.Fatal(err)
	}
	d := EvaluateDelay(p, res.Solution, DefaultDelayParams())
	if d <= 0 {
		t.Fatalf("delay = %v", d)
	}
	q := SequentialProblem(p)
	if q.SFC.MaxWidth() != 1 {
		t.Fatal("SequentialProblem not sequential")
	}
}

func TestDelayBoundedFacade(t *testing.T) {
	net := demoNetwork()
	s, _ := ParseSFC("1;2,3")
	opts := MBBEOptions()
	opts.MaxDelay = 100
	opts.Delay = DefaultDelayParams()
	p := &Problem{Net: net, SFC: s, Src: 0, Dst: 4, Rate: 1, Size: 1}
	res, err := Embed(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if d := EvaluateDelay(p, res.Solution, opts.Delay); d > opts.MaxDelay {
		t.Fatalf("delay %v exceeds bound", d)
	}
}

func TestChurnFacade(t *testing.T) {
	net := demoNetwork()
	s, _ := ParseSFC("1")
	reqs := []TimedFlowRequest{
		{Request: FlowRequest{SFC: s, Src: 0, Dst: 4, Rate: 1, Size: 1}, Arrival: 0, Duration: 5},
		{Request: FlowRequest{SFC: s, Src: 0, Dst: 4, Rate: 1, Size: 1}, Arrival: 10, Duration: 5},
	}
	report, err := RunChurn(net, reqs, EmbedMBBE)
	if err != nil {
		t.Fatal(err)
	}
	if report.Accepted != 2 {
		t.Fatalf("accepted = %d", report.Accepted)
	}
}

func TestSerializationFacade(t *testing.T) {
	net := demoNetwork()
	s, _ := ParseSFC("1;2,3")
	p := &Problem{Net: net, SFC: s, Src: 0, Dst: 4, Rate: 1, Size: 1}
	res, err := EmbedMBBE(p)
	if err != nil {
		t.Fatal(err)
	}
	var netBuf, solBuf, dotBuf strings.Builder
	if err := WriteNetworkJSON(&netBuf, net); err != nil {
		t.Fatal(err)
	}
	net2, err := ReadNetworkJSON(strings.NewReader(netBuf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if net2.NumInstances() != net.NumInstances() {
		t.Fatal("network round trip lost instances")
	}
	if err := WriteSolutionJSON(&solBuf, p, res.Solution); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSolutionJSON(strings.NewReader(solBuf.String()), p)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(p, back); err != nil {
		t.Fatal(err)
	}
	if err := WriteDOT(&dotBuf, net, DOTOptions{Solution: res.Solution, Problem: p}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dotBuf.String(), "graph") {
		t.Fatal("DOT output empty")
	}
}

func TestOnlineFacade(t *testing.T) {
	net := demoNetwork()
	s, _ := ParseSFC("1")
	reqs := []FlowRequest{{SFC: s, Src: 0, Dst: 4, Rate: 1, Size: 1}}
	report, err := RunOnline(net, reqs, EmbedMBBE)
	if err != nil {
		t.Fatal(err)
	}
	if report.Accepted != 1 {
		t.Fatalf("accepted = %d", report.Accepted)
	}
}

func TestParseSFC(t *testing.T) {
	s, err := ParseSFC("1; 2 ,3 ;4")
	if err != nil {
		t.Fatal(err)
	}
	if s.Omega() != 3 || s.Layers[1].Width() != 2 || s.Layers[1].VNFs[1] != 3 {
		t.Fatalf("parsed %v", s)
	}
	if got := FormatSFC(s); got != "1;2,3;4" {
		t.Fatalf("FormatSFC = %q", got)
	}
	if empty, err := ParseSFC("  "); err != nil || empty.Omega() != 0 {
		t.Fatalf("empty parse: %v %v", empty, err)
	}
	for _, bad := range []string{"1;;2", "a", "1,;2", "0", "-3"} {
		if _, err := ParseSFC(bad); err == nil {
			t.Fatalf("ParseSFC(%q) accepted", bad)
		}
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		s, err := GenerateSFC(SFCConfig{Size: 1 + rng.Intn(9), LayerWidth: 3, VNFKinds: 12}, rng)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseSFC(FormatSFC(s))
		if err != nil {
			t.Fatal(err)
		}
		if back.String() != s.String() {
			t.Fatalf("round trip: %v != %v", back, s)
		}
	}
}

func TestStockConstants(t *testing.T) {
	if NumStockVNFs != 8 || StockNames[Firewall] != "firewall" {
		t.Fatal("stock exports broken")
	}
	rt := StockRules()
	if rt.CanParallelize(Firewall, IDS) {
		t.Fatal("rules export broken")
	}
}
