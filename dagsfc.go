// Package dagsfc is a Go implementation of "DAG-SFC: Minimize the
// Embedding Cost of SFC with Parallel VNFs" (Lin, Guo, Shen, Tang, Ren —
// ICPP 2018).
//
// A hybrid service function chain mixes sequential and parallel VNFs; the
// paper standardizes it as a layered DAG (a DAG-SFC) and asks for the
// cheapest embedding of that DAG into a priced, capacitated cloud network:
// rent one VNF instance per DAG position and implement every logical edge
// (meta-path) with a network path, minimizing VNF rental cost plus link
// cost. The package provides:
//
//   - the network model: priced bidirectional links, per-node VNF
//     instances with rental prices and processing capacities, and a
//     residual-capacity ledger for online scenarios;
//   - the DAG-SFC model, including the transformation of a sequential
//     chain into its hybrid form via read/write-conflict analysis of NF
//     pairs (after NFP/ParaBox);
//   - the paper's embedding algorithms, BBE and MBBE, the RANV/MINV
//     benchmarks, an exact DP solver, a simulated-annealing metaheuristic,
//     and the paper's §3.3 integer program solved by a built-in
//     simplex/branch-and-bound MILP stack;
//   - the evaluation harness reproducing every figure of the paper's §5,
//     plus latency, delay-bounded embedding, online multi-flow/churn,
//     Steiner multicast and topology-robustness extensions.
//
// # Quick start
//
//	net := dagsfc.NewNetwork(g, dagsfc.Catalog{N: 4})   // deploy instances...
//	chain := []dagsfc.VNFID{1, 2, 3}
//	hybrid := dagsfc.ChainToDAG(chain, dagsfc.StockRules(), 3)
//	p := &dagsfc.Problem{Net: net, SFC: hybrid, Src: 0, Dst: 9, Rate: 1, Size: 1}
//	res, err := dagsfc.EmbedMBBE(p)
//
// See examples/ for complete programs and cmd/dagsfc-bench for the
// experiment suite.
package dagsfc

import (
	"io"
	"math/rand"

	"dagsfc/internal/anneal"
	"dagsfc/internal/baseline"
	"dagsfc/internal/core"
	"dagsfc/internal/exact"
	"dagsfc/internal/graph"
	"dagsfc/internal/ipmodel"
	"dagsfc/internal/latency"
	"dagsfc/internal/netgen"
	"dagsfc/internal/network"
	"dagsfc/internal/online"
	"dagsfc/internal/sfc"
	"dagsfc/internal/sfcgen"
	"dagsfc/internal/viz"
)

// Graph and path types (see internal/graph).
type (
	// Graph is the priced, capacitated bidirectional multigraph modeling
	// the target network's topology.
	Graph = graph.Graph
	// NodeID identifies a network node.
	NodeID = graph.NodeID
	// EdgeID identifies a network link.
	EdgeID = graph.EdgeID
	// Edge is one bidirectional link with price and bandwidth capacity.
	Edge = graph.Edge
	// Path is a walk through the network implementing a meta-path.
	Path = graph.Path
)

// Network and deployment types (see internal/network).
type (
	// Network is the target cloud network: graph plus VNF deployment.
	Network = network.Network
	// Catalog enumerates the VNF categories f(1)..f(N) plus the implicit
	// dummy f(0) and merger f(N+1).
	Catalog = network.Catalog
	// VNFID identifies a VNF category.
	VNFID = network.VNFID
	// Instance is a rentable VNF deployment on a node.
	Instance = network.Instance
	// Ledger tracks committed link bandwidth and instance capacity — the
	// real-time network view.
	Ledger = network.Ledger
)

// SFC types (see internal/sfc).
type (
	// Layer is one serial stage of a DAG-SFC (a parallel VNF set).
	Layer = sfc.Layer
	// DAGSFC is the standardized hybrid SFC: serial layers of parallel
	// VNF sets, each parallel layer followed by a merger.
	DAGSFC = sfc.DAGSFC
	// RuleTable answers which VNF category pairs may run in parallel.
	RuleTable = sfc.RuleTable
	// Action is a category's packet read/write/drop profile.
	Action = sfc.Action
	// DAG is a generic dependency graph over SFC positions, convertible
	// to a DAG-SFC with Levelize.
	DAG = sfc.DAG
)

// Embedding problem types (see internal/core).
type (
	// Problem is one DAG-SFC embedding instance.
	Problem = core.Problem
	// Solution is a complete embedding: assignments plus real-paths.
	Solution = core.Solution
	// LayerEmbedding is the embedding of one layer.
	LayerEmbedding = core.LayerEmbedding
	// Result bundles a solution with its cost breakdown and search stats.
	Result = core.Result
	// Options tunes the BBE/MBBE search.
	Options = core.Options
	// CostBreakdown is the evaluated objective with reuse counts.
	CostBreakdown = core.CostBreakdown
	// InstanceUseKey identifies a rented instance in a CostBreakdown.
	InstanceUseKey = core.InstanceUseKey
	// Stats counts the work an embedding run performed.
	Stats = core.Stats
	// LayerSpec is one layer's embedding obligation (used by Observer).
	LayerSpec = core.LayerSpec
	// Observer receives progress callbacks from an Embed run (set it on
	// Options.Observer).
	Observer = core.Observer
	// FuncObserver adapts plain functions to Observer.
	FuncObserver = core.FuncObserver
	// MultiObserver fans callbacks out to several observers.
	MultiObserver = core.MultiObserver
	// TraceRecorder is an Observer capturing one Embed run as a telemetry
	// span tree (the -trace-out/-explain machinery of cmd/dagsfc-embed).
	TraceRecorder = core.TraceRecorder
)

// NewTraceRecorder starts recording an Embed run as a span tree; set it as
// (or into) Options.Observer, call Finish after Embed returns, then Trace.
func NewTraceRecorder(alg string) *TraceRecorder { return core.NewTraceRecorder(alg) }

// Generator configurations (see internal/netgen and internal/sfcgen).
type (
	// NetConfig parameterizes the random network generator (§5.1).
	NetConfig = netgen.Config
	// SFCConfig parameterizes the random SFC generator (§5.1).
	SFCConfig = sfcgen.Config
)

// Latency and online extension types.
type (
	// DelayParams configures the end-to-end delay model.
	DelayParams = latency.Params
	// FlowRequest is one flow in an online embedding scenario.
	FlowRequest = online.Request
	// OnlineReport aggregates an online run's acceptance and cost.
	OnlineReport = online.Report
)

// ErrNoEmbedding is returned when no feasible embedding exists (or none
// within the search budget).
var ErrNoEmbedding = core.ErrNoEmbedding

// NewGraph returns a graph with n nodes and no links.
func NewGraph(n int) *Graph { return graph.New(n) }

// NewNetwork returns a network over g offering the catalog's categories.
func NewNetwork(g *Graph, c Catalog) *Network { return network.New(g, c) }

// NewLedger returns an empty capacity ledger over net.
func NewLedger(net *Network) *Ledger { return network.NewLedger(net) }

// EmbedBBE embeds with the Breadth-first Backtracking Embedding method
// (Algorithm 1 of the paper).
func EmbedBBE(p *Problem) (*Result, error) { return core.EmbedBBE(p) }

// EmbedMBBE embeds with the Mini-path BBE method (§4.5): BBE plus bounded
// forward search, min-cost-path instantiation, and X_d-tree pruning.
func EmbedMBBE(p *Problem) (*Result, error) { return core.EmbedMBBE(p) }

// Embed runs the BBE framework with explicit options.
func Embed(p *Problem, opts Options) (*Result, error) { return core.Embed(p, opts) }

// BBEOptions and MBBEOptions return the two methods' default search
// configurations.
func BBEOptions() Options { return core.BBEOptions() }

// MBBEOptions returns the Mini-path BBE configuration.
func MBBEOptions() Options { return core.MBBEOptions() }

// MBBESteinerOptions returns MBBE with the Steiner multicast extension:
// each parallel layer's inter-layer meta-paths are instantiated along a
// shared multicast tree, which the eq. (9) cost model pays only once per
// link.
func MBBESteinerOptions() Options { return core.MBBESteinerOptions() }

// EmbedRANV embeds with the randomized benchmark of §5.1.
func EmbedRANV(p *Problem, rng *rand.Rand) (*Result, error) { return baseline.EmbedRANV(p, rng) }

// EmbedMINV embeds with the cheapest-instance benchmark of §5.1.
func EmbedMINV(p *Problem) (*Result, error) { return baseline.EmbedMINV(p) }

// EmbedExact solves small instances to optimality (see internal/exact for
// the model caveats). The zero Limits applies safe defaults.
func EmbedExact(p *Problem, lim exact.Limits) (*Result, error) { return exact.Embed(p, lim) }

// ExactLimits guards the exact solver against oversized instances.
type ExactLimits = exact.Limits

// EmbedAnneal embeds by simulated annealing over VNF placements, started
// from the MINV greedy solution (see internal/anneal). The zero Options
// applies the default schedule.
func EmbedAnneal(p *Problem, rng *rand.Rand, opts AnnealOptions) (*Result, error) {
	return anneal.Embed(p, rng, opts)
}

// AnnealOptions tunes the simulated-annealing schedule.
type AnnealOptions = anneal.Options

// EmbedILP solves the paper's §3.3 integer program with the built-in
// branch-and-bound solver; tractable on very small instances only (see
// internal/ipmodel). The zero Options applies safe defaults.
func EmbedILP(p *Problem, opts ILPOptions) (*Result, error) { return ipmodel.Embed(p, opts) }

// ILPOptions tunes the integer-program encoding and solver.
type ILPOptions = ipmodel.Options

// Validate checks a solution against every constraint of the optimization
// model; nil means feasible.
func Validate(p *Problem, s *Solution) error { return core.Validate(p, s) }

// ComputeCost evaluates a solution's objective (eq. 1 with the reuse
// accounting of eqs. 7–10).
func ComputeCost(p *Problem, s *Solution) (CostBreakdown, error) { return core.ComputeCost(p, s) }

// Commit validates a solution and reserves its capacity demands on the
// problem's ledger, for online multi-flow scenarios.
func Commit(p *Problem, s *Solution) (CostBreakdown, error) { return core.Commit(p, s) }

// ChainToDAG transforms a sequential chain into its hybrid DAG-SFC form by
// grouping consecutive pairwise-parallelizable VNFs (Fig. 2 of the paper).
// maxWidth bounds the parallel set size (the paper uses 3); <= 0 means
// unbounded.
func ChainToDAG(chain []VNFID, rules *RuleTable, maxWidth int) DAGSFC {
	return sfc.ChainToDAG(chain, rules, maxWidth)
}

// FromChain returns the fully sequential DAG-SFC of a chain (one layer per
// VNF).
func FromChain(chain []VNFID) DAGSFC { return sfc.FromChain(chain) }

// NewRuleTable returns an empty parallelizability rule table.
func NewRuleTable() *RuleTable { return sfc.NewRuleTable() }

// StockRules returns action profiles for the stock NF categories below.
func StockRules() *RuleTable { return sfc.StockRules() }

// Stock network function categories (catalog positions f(1)..f(8)) with
// NFP/ParaBox-style read-write profiles; see StockRules.
const (
	Firewall      = sfc.Firewall
	IDS           = sfc.IDS
	NAT           = sfc.NAT
	LoadBalancer  = sfc.LoadBalancer
	Monitor       = sfc.Monitor
	VPN           = sfc.VPN
	WANOptimizer  = sfc.WANOptimizer
	TrafficShaper = sfc.TrafficShaper
	NumStockVNFs  = sfc.NumStockVNFs
)

// StockNames maps stock categories to display names.
var StockNames = sfc.StockNames

// GenerateNetwork draws one random network from the §5.1 distribution.
func GenerateNetwork(cfg NetConfig, rng *rand.Rand) (*Network, error) {
	return netgen.Generate(cfg, rng)
}

// DefaultNetConfig returns the paper's Table 2 base network configuration.
func DefaultNetConfig() NetConfig { return netgen.Default() }

// GenerateSFC draws one random DAG-SFC from the §5.1 distribution.
func GenerateSFC(cfg SFCConfig, rng *rand.Rand) (DAGSFC, error) {
	return sfcgen.Generate(cfg, rng)
}

// EvaluateDelay computes the end-to-end delay of an embedded DAG-SFC under
// the given delay model (parallel branches overlap; serial layers add up).
func EvaluateDelay(p *Problem, s *Solution, params DelayParams) float64 {
	return latency.Evaluate(p, s, params)
}

// DefaultDelayParams returns the default delay model.
func DefaultDelayParams() DelayParams { return latency.DefaultParams() }

// SequentialProblem returns a copy of p whose SFC is the fully sequential
// form of the same chain, for hybrid-vs-sequential comparisons.
func SequentialProblem(p *Problem) *Problem { return latency.SequentialProblem(p) }

// RunOnline embeds a sequence of flow requests on a shared ledger,
// committing each accepted embedding (see internal/online).
func RunOnline(net *Network, reqs []FlowRequest, embed func(*Problem) (*Result, error)) (OnlineReport, error) {
	return online.Run(net, reqs, embed)
}

// Release returns a committed solution's capacity to the problem's ledger
// (a flow departing); the exact inverse of Commit.
func Release(p *Problem, s *Solution) error { return core.Release(p, s) }

// TimedFlowRequest is a flow with an arrival time and holding duration for
// churn scenarios.
type TimedFlowRequest = online.TimedRequest

// ChurnReport aggregates a churn run.
type ChurnReport = online.ChurnReport

// RunChurn processes timed requests in event order, committing arrivals
// and releasing departures, so capacity recycles (see internal/online).
func RunChurn(net *Network, reqs []TimedFlowRequest, embed func(*Problem) (*Result, error)) (ChurnReport, error) {
	return online.RunChurn(net, reqs, embed)
}

// WriteSolutionJSON serializes a solution (paths as node sequences).
func WriteSolutionJSON(w io.Writer, p *Problem, s *Solution) error {
	return core.WriteSolutionJSON(w, p, s)
}

// ReadSolutionJSON parses a solution written by WriteSolutionJSON,
// re-resolving its paths against the problem's network. Validate the
// result before use.
func ReadSolutionJSON(r io.Reader, p *Problem) (*Solution, error) {
	return core.ReadSolutionJSON(r, p)
}

// WriteNetworkJSON serializes a network (topology, prices, deployment).
func WriteNetworkJSON(w io.Writer, net *Network) error { return net.WriteJSON(w) }

// ReadNetworkJSON parses a network written by WriteNetworkJSON.
func ReadNetworkJSON(r io.Reader) (*Network, error) { return network.ReadJSON(r) }

// DOTOptions controls WriteDOT rendering.
type DOTOptions = viz.Options

// WriteDOT renders a network — and, when DOTOptions carries a Solution
// and Problem, the embedding overlay — as Graphviz DOT.
func WriteDOT(w io.Writer, net *Network, opts DOTOptions) error {
	return viz.WriteDOT(w, net, opts)
}
