package dagsfc_test

import (
	"fmt"
	"log"

	"dagsfc"
)

// exampleNetwork builds the small priced network the examples share:
//
//	0 --1-- 1 --2-- 2 --3-- 3
//
// with f(1)@1, f(2)@2, f(3)@1 and @3, and a merger @2.
func exampleNetwork() *dagsfc.Network {
	g := dagsfc.NewGraph(4)
	g.MustAddEdge(0, 1, 1, 100)
	g.MustAddEdge(1, 2, 2, 100)
	g.MustAddEdge(2, 3, 3, 100)
	net := dagsfc.NewNetwork(g, dagsfc.Catalog{N: 3})
	net.MustAddInstance(1, 1, 10, 100)
	net.MustAddInstance(2, 2, 20, 100)
	net.MustAddInstance(1, 3, 30, 100)
	net.MustAddInstance(3, 3, 12, 100)
	net.MustAddInstance(2, dagsfc.VNFID(4), 5, 100)
	return net
}

func ExampleEmbedMBBE() {
	net := exampleNetwork()
	s, _ := dagsfc.ParseSFC("1;2,3")
	p := &dagsfc.Problem{Net: net, SFC: s, Src: 0, Dst: 3, Rate: 1, Size: 1}
	res, err := dagsfc.EmbedMBBE(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total %.0f (VNF %.0f + links %.0f)\n",
		res.Cost.Total(), res.Cost.VNFCost, res.Cost.LinkCost)
	// Output:
	// total 73 (VNF 65 + links 8)
}

func ExampleEmbedExact() {
	net := exampleNetwork()
	s, _ := dagsfc.ParseSFC("1;2,3")
	p := &dagsfc.Problem{Net: net, SFC: s, Src: 0, Dst: 3, Rate: 1, Size: 1}
	res, err := dagsfc.EmbedExact(p, dagsfc.ExactLimits{})
	if err != nil {
		log.Fatal(err)
	}
	// The exact solver finds the remote cheap f(3)@3 that the greedy
	// forward search never reaches.
	fmt.Printf("optimal %.0f\n", res.Cost.Total())
	// Output:
	// optimal 59
}

func ExampleChainToDAG() {
	chain := []dagsfc.VNFID{dagsfc.Firewall, dagsfc.IDS, dagsfc.Monitor, dagsfc.NAT}
	hybrid := dagsfc.ChainToDAG(chain, dagsfc.StockRules(), 3)
	fmt.Println(hybrid.String())
	// Output:
	// [1] -> [2|5 +m] -> [3]
}

func ExampleParseSFC() {
	s, err := dagsfc.ParseSFC("1;2,3,4;5")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(s.String(), "size:", s.Size(), "layers:", s.Omega())
	// Output:
	// [1] -> [2|3|4 +m] -> [5] size: 5 layers: 3
}

func ExampleValidate() {
	net := exampleNetwork()
	s, _ := dagsfc.ParseSFC("1")
	p := &dagsfc.Problem{Net: net, SFC: s, Src: 0, Dst: 3, Rate: 1, Size: 1}
	res, _ := dagsfc.EmbedMBBE(p)
	fmt.Println("feasible:", dagsfc.Validate(p, res.Solution) == nil)

	// Break the solution: claim f(1) sits on a node that has no instance.
	res.Solution.Layers[0].Nodes[0] = 3
	fmt.Println("tampered:", dagsfc.Validate(p, res.Solution) == nil)
	// Output:
	// feasible: true
	// tampered: false
}

func ExampleCommit() {
	net := exampleNetwork()
	s, _ := dagsfc.ParseSFC("1")
	p := &dagsfc.Problem{Net: net, Ledger: dagsfc.NewLedger(net), SFC: s, Src: 0, Dst: 3, Rate: 1, Size: 1}
	res, _ := dagsfc.EmbedMBBE(p)
	if _, err := dagsfc.Commit(p, res.Solution); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("f(1)@1 residual after commit: %.0f\n", p.Ledger.InstanceResidual(1, 1))
	if err := dagsfc.Release(p, res.Solution); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after release: %.0f\n", p.Ledger.InstanceResidual(1, 1))
	// Output:
	// f(1)@1 residual after commit: 99
	// after release: 100
}
