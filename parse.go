package dagsfc

import "dagsfc/internal/sfc"

// ParseSFC parses the textual DAG-SFC syntax used by the CLI tools and the
// serving API: layers separated by ';', parallel VNFs within a layer
// separated by ','. For example "1;2,3,4;5" is the three-layer SFC
// [f1] -> [f2|f3|f4 +m] -> [f5]. Whitespace around numbers is ignored.
func ParseSFC(s string) (DAGSFC, error) { return sfc.Parse(s) }

// FormatSFC renders a DAG-SFC in the syntax ParseSFC accepts.
func FormatSFC(s DAGSFC) string { return sfc.Format(s) }
