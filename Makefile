# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all check build test test-race race short bench bench-smoke bench-json bench-guard fuzz-smoke serve-smoke obs-smoke chaos-smoke durable-smoke protect-smoke race-survival repro examples vet fmt

all: build vet test

# check is the pre-commit gate: build, vet, the full test suite, the race
# detector (the telemetry registry is written from concurrent trial
# runners, so -race is load-bearing here, not ceremony), and a short fuzz
# of the search-kernel priority queues.
check: build vet test race fuzz-smoke

# fuzz-smoke runs the bucket-queue fuzzer briefly: the bucket queue and
# the 4-ary heap must pop in the identical strict (dist, node) order, or
# search results would fork depending on which structure a compiled view
# selects. FUZZTIME=0x replays only the checked-in corpus.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzBucketQueue -fuzztime $(FUZZTIME) ./internal/graph/

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

race: test-race

short:
	$(GO) test -short ./...

# One testing.B benchmark per paper figure plus micro-benchmarks.
bench:
	$(GO) test -bench . -benchmem ./...

# Compile and run every benchmark exactly once — catches bit-rotted
# benchmark code without the full -bench timing cost.
bench-smoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# bench-json runs the hot-path micro-benchmarks with -benchmem and records
# ns/op, B/op and allocs/op as a labelled run in $(BENCH_JSON) — the
# tracked baseline that lets PRs show before/after numbers. Two steps on
# purpose: a benchmark failure fails the target before anything is parsed.
# CI runs it with BENCHTIME=1x BENCH_LABEL=ci as a smoke check (errors
# fail, thresholds don't).
BENCH_JSON ?= BENCH_PR10.json
BENCH_LABEL ?= after
BENCHTIME ?= 0.5s
BENCH_RAW ?= /tmp/dagsfc-bench-raw.txt
# -timeout 30m: the serve-throughput family (plain + three fsync
# policies) alone runs several minutes at the default benchtime, which
# busts go test's 10m per-package default.
bench-json:
	$(GO) test -bench . -benchmem -benchtime $(BENCHTIME) -timeout 30m -run '^$$' ./internal/graph/ ./internal/core/ ./internal/network/ ./cmd/dagsfc-load/ > $(BENCH_RAW)
	@cat $(BENCH_RAW)
	$(GO) run ./cmd/dagsfc-bench -parse-bench $(BENCH_RAW) -bench-label $(BENCH_LABEL) -bench-out $(BENCH_JSON)

# bench-guard regenerates the candidate ledger, prints the old->new delta
# of every benchmark both ledgers share, then fails if a guarded hot-path
# benchmark (filtered Dijkstra, uncached MBBE embed) regressed more than
# 20% against the committed PR9 baseline, or if the warm path-cache embed
# lost its 1.5x speedup floor. The 20% limit is wide on purpose — it
# absorbs host-to-host ns/op noise while still catching real hot-path
# regressions.
# -guard-serve-old adds the durability-tax check: the serve throughput
# with the WAL on but fsync off must stay within the same limit of the
# pre-durability BenchmarkServeThroughput baseline.
BENCH_GUARD_OLD ?= BENCH_PR9.json
BENCH_GUARD_SERVE_OLD ?= BENCH_PR7.json
bench-guard: bench-json
	$(GO) run ./cmd/dagsfc-bench -guard-old $(BENCH_GUARD_OLD) -guard-new $(BENCH_JSON) -guard-serve-old $(BENCH_GUARD_SERVE_OLD)

# serve-smoke boots the control plane in-process on an ephemeral port and
# drives one full commit/release cycle over real HTTP: residuals must
# shrink, return to the seed exactly, and /metrics must report the traffic.
serve-smoke:
	$(GO) run ./cmd/dagsfc-load -selfserve -smoke

# obs-smoke checks the observability surface end to end over real HTTP:
# the smoke run additionally asserts stage histograms and journal
# counters appear in /metrics, /v1/events is non-empty, and a committed
# flow's /v1/flows/{id}/events timeline runs enqueue→committed→released.
# A JSON-structured log stream and debug journal logging exercise the
# slog path at the same time.
obs-smoke:
	$(GO) run ./cmd/dagsfc-load -selfserve -smoke -log-format json -log-level debug

# chaos-smoke boots the control plane in-process, commits a flow
# population, replays a seeded self-restoring fault schedule against it,
# and verifies the survivability invariants: all faults restored, every
# flow settles (repaired or evicted), the ledger drains back to the exact
# seed residuals, and zero embed workers panicked. On failure the full
# event journal is dumped for post-mortem (CI uploads it as an artifact).
chaos-smoke:
	$(GO) run ./cmd/dagsfc-chaos -selfserve -smoke -journal-dump /tmp/chaos-journal.json

# protect-smoke is the protection acceptance check: a mixed population of
# backup-protected and unprotected flows rides out one-at-a-time
# edge-down faults; every flow holding an active backup when its fault
# lands must fail over in place (never strand, never evict), at least one
# failover must actually occur, and the ledger must drain back to the
# seed residuals with the backup gauge at zero.
protect-smoke:
	$(GO) run ./cmd/dagsfc-chaos -selfserve -smoke -protect -journal-dump /tmp/protect-journal.json

# durable-smoke is the durability acceptance check: drive a seeded
# workload against a WAL-backed server, SIGKILL it (in-process crash: the
# log's user-space buffer is dropped, nothing is flushed) at a seeded
# point, restart over the same WAL directory, finish the workload, and
# require the flow table and every ledger residual to be identical to a
# never-killed control run of the same seed. The WAL directory is kept
# for the CI artifact on failure.
durable-smoke:
	$(GO) run ./cmd/dagsfc-chaos -kill-restart -smoke -wal-dir /tmp/dagsfc-wal-smoke

# The survivability packages run concurrent repair controllers, fault
# injection, and breaker state under load — run them under the race
# detector on their own so a failure names the culprit directly.
race-survival:
	$(GO) test -race ./internal/server/... ./internal/faults/... ./internal/online/...

# Regenerate every table/figure of the paper at full trial count.
repro:
	$(GO) run ./cmd/dagsfc-bench -exp all -trials 100 -seed 2018

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/transform
	$(GO) run ./examples/securitychain
	$(GO) run ./examples/onlineflows
	$(GO) run ./examples/datacenter
	$(GO) run ./examples/delaybudget
