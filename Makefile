# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-race short bench repro examples vet fmt

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

short:
	$(GO) test -short ./...

# One testing.B benchmark per paper figure plus micro-benchmarks.
bench:
	$(GO) test -bench . -benchmem ./...

# Regenerate every table/figure of the paper at full trial count.
repro:
	$(GO) run ./cmd/dagsfc-bench -exp all -trials 100 -seed 2018

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/transform
	$(GO) run ./examples/securitychain
	$(GO) run ./examples/onlineflows
	$(GO) run ./examples/datacenter
	$(GO) run ./examples/delaybudget
